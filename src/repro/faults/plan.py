"""Deterministic, seed-driven fault injection.

The reliability story of the paper (Fig. 5 wear-out, the adaptive-BCH
correction table) needs reads that can actually *fail*: bit errors drawn
from the block's wear state, program/erase status failures, grown bad
blocks and stuck-busy dies.  This module provides the fault *source*;
detection and recovery live in the NAND / channel / device layers.

Design constraints (the determinism contract of the sweep engine):

* Every draw is a pure function of ``(seed, operation key, per-key
  counter)`` — a keyed BLAKE2b hash, no shared RNG stream — so the fault
  schedule is independent of process scheduling, worker count and call
  order.  ``workers=1`` and ``workers=4`` sweeps therefore produce
  bit-identical UBER / retry / retirement metrics.
* With :attr:`FaultConfig.enabled` False no plan is ever constructed and
  the hot paths pay a single ``is None`` check (the zero-overhead guard).

The SBFI campaigns of the DAVOS toolkit use the same structure — a
seeded faultload generated up front from per-target probabilities, then
replayed against the design — adapted here to a discrete-event kernel:
instead of materializing a faultload file we make the draw lazily at the
moment the operation executes, keyed so the result is identical either
way.
"""

from __future__ import annotations

import hashlib
import math
import sys
import warnings
from dataclasses import dataclass
from statistics import NormalDist
from typing import Dict, Tuple

from ..kernel.events import SimulationError
from ..kernel.simtime import us


class FaultError(SimulationError):
    """Base class for injected-fault outcomes surfaced to callers."""


class UncorrectableReadError(FaultError):
    """A page read exhausted the retry ladder with errors beyond ECC."""

    def __init__(self, message: str, address=None, errors: int = 0,
                 t: int = 0, retries: int = 0):
        super().__init__(message)
        self.address = address
        self.errors = errors
        self.t = t
        self.retries = retries


class ProgramFailError(FaultError):
    """The die reported program-status FAIL for a page."""

    def __init__(self, message: str, address=None):
        super().__init__(message)
        self.address = address


class WriteFaultError(FaultError):
    """A write could not be placed (spare-block pool exhausted)."""


class SparePoolExhausted(WriteFaultError):
    """Block retirement ran out of spare blocks on a die."""


def _probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of one fault-injection campaign (fingerprintable).

    The config is part of :class:`~repro.ssd.architecture.SsdArchitecture`,
    so it participates in the sweep engine's content hash: changing any
    knob is a cache miss, and the plan seed is pinned per design point.
    """

    enabled: bool = False
    #: Campaign seed; combined with a per-device salt so two devices in
    #: one process draw independent schedules.
    seed: int = 0
    #: Sample per-codeword bit errors from the wear model's RBER on every
    #: page read (the fault source that makes Fig. 5 two-sided).
    bit_errors: bool = True
    #: Multiplier on the wear model's RBER (stress knob for campaigns
    #: that want failures within short traces).
    rber_scale: float = 1.0
    #: Per-operation status-failure probabilities.
    program_fail_prob: float = 0.0
    erase_fail_prob: float = 0.0
    #: Die stuck-busy/timeout fault: operation takes ``stuck_busy_extra_ps``
    #: longer with this per-operation probability.
    stuck_busy_prob: float = 0.0
    stuck_busy_extra_ps: int = us(500)
    #: Probability that a block is factory-marked bad (grown bad blocks
    #: come from erase failures and program-fail retirement at runtime).
    factory_bad_prob: float = 0.0
    #: Read-retry ladder depth: how many re-reads the channel controller
    #: attempts before declaring the page uncorrectable.
    read_retry_max: int = 4
    #: Effective RBER multiplier per retry step (shifted read voltages
    #: recover a fraction of the raw errors on each rung of the ladder).
    retry_rber_scale: float = 0.5
    #: Spare blocks per plane available for bad-block retirement before
    #: the device starts failing writes.
    spare_blocks_per_plane: int = 8
    #: Remap attempts per page before a write is declared failed.
    max_remap_attempts: int = 8

    def __post_init__(self) -> None:
        _probability("program_fail_prob", self.program_fail_prob)
        _probability("erase_fail_prob", self.erase_fail_prob)
        _probability("stuck_busy_prob", self.stuck_busy_prob)
        _probability("factory_bad_prob", self.factory_bad_prob)
        if self.rber_scale < 0:
            raise ValueError("rber_scale must be >= 0")
        if not 0.0 < self.retry_rber_scale <= 1.0:
            raise ValueError("retry_rber_scale must be in (0, 1]")
        if self.read_retry_max < 0:
            raise ValueError("read_retry_max must be >= 0")
        if self.stuck_busy_extra_ps < 0:
            raise ValueError("stuck_busy_extra_ps must be >= 0")
        if self.spare_blocks_per_plane < 0:
            raise ValueError("spare_blocks_per_plane must be >= 0")
        if self.max_remap_attempts < 1:
            raise ValueError("max_remap_attempts must be >= 1")


#: Tail bound of :func:`poisson_draw`, in standard deviations past the
#: mean.  Beyond ``mean + 40*sigma`` the Poisson tail mass is < 1e-300 —
#: far below the 2**-64 resolution of the keyed-hash uniforms — so a
#: quantile can only reach the bound through floating-point rounding of
#: the CDF accumulation, never through genuine tail mass.
POISSON_TAIL_SIGMA = 40.0

#: ``math.exp(-mean)`` goes subnormal past this mean (~708.4) and the
#: term-recurrence inversion loses most of its precision well before the
#: absolute underflow at ~745 (draws drift high, upper quantiles hit the
#: tail clamp), so :func:`poisson_draw` switches to the corrected
#: normal-approximation inverse while ``exp(-mean)`` is still a normal
#: float.
POISSON_UNDERFLOW_MEAN = -math.log(sys.float_info.min)

_STANDARD_NORMAL = NormalDist()


class PoissonTailClamped(RuntimeWarning):
    """:func:`poisson_draw` clamped a quantile at its documented bound.

    Firing means CDF rounding (not tail mass) exhausted the iteration
    budget — the returned draw is ``poisson_limit(mean)``, a documented
    over-estimate of at most a rounding error's worth of quantile.
    """


def poisson_limit(mean: float) -> int:
    """Largest draw :func:`poisson_draw` will return for ``mean``.

    ``mean + POISSON_TAIL_SIGMA * sqrt(mean) + POISSON_TAIL_SIGMA``: the
    40-sigma tail bound, padded by a constant so tiny means keep a
    non-trivial range.
    """
    return int(mean + POISSON_TAIL_SIGMA * math.sqrt(mean)
               + POISSON_TAIL_SIGMA)


def poisson_draw(u: float, mean: float) -> int:
    """Invert the Poisson CDF at quantile ``u`` (binomial tail stand-in).

    Page bit errors are Binomial(n, p) with large n and small p; the
    Poisson approximation is standard for RBER work and keeps the draw a
    cheap deterministic function of one uniform.

    Deterministic contract (property-tested): the draw is monotone
    nondecreasing in ``u`` at fixed ``mean`` and in ``mean`` at fixed
    ``u``, and never exceeds :func:`poisson_limit(mean)`.  Two explicit
    escape hatches replace the old silent clamp:

    * ``mean > POISSON_UNDERFLOW_MEAN`` (~708): ``exp(-mean)`` goes
      subnormal and the term recurrence degrades, so the draw uses the
      Cornish-Fisher corrected normal inverse
      ``mean + sqrt(mean) * z + (z^2 - 1) / 6`` (error O(1/sqrt(mean)),
      negligible at the means that reach this branch).
    * CDF rounding exhausts the iteration budget inside the normal
      regime: the draw clamps to the bound and emits
      :class:`PoissonTailClamped` instead of clamping silently.
    """
    if mean <= 0:
        return 0
    if not 0.0 <= u < 1.0:
        raise ValueError(f"quantile must be in [0, 1), got {u}")
    limit = poisson_limit(mean)
    if mean > POISSON_UNDERFLOW_MEAN:
        if u <= 0.0:
            return 0
        z = _STANDARD_NORMAL.inv_cdf(u)
        # Cornish-Fisher skew term: matches the exact inversion to +-1
        # at the regime boundary instead of the plain normal's +-z^2/6.
        approx = mean + math.sqrt(mean) * z + (z * z - 1.0) / 6.0
        return max(0, min(limit, round(approx)))
    term = math.exp(-mean)
    cdf = term
    k = 0
    while u >= cdf:
        if k >= limit:
            warnings.warn(
                f"poisson_draw(u={u!r}, mean={mean!r}) hit the "
                f"{POISSON_TAIL_SIGMA:.0f}-sigma bound ({limit}) before "
                f"the CDF reached the quantile; clamping",
                PoissonTailClamped, stacklevel=2)
            return limit
        k += 1
        term *= mean / k
        cdf += term
    return k


class FaultPlan:
    """Lazy, keyed fault schedule for one simulated device.

    Each query hashes ``(operation key, per-key occurrence counter)``
    under a seed-derived BLAKE2b key into a uniform in [0, 1).  The
    counter distinguishes the Nth program of a page from the first while
    keeping the schedule independent of interleaving across dies.
    """

    __slots__ = ("config", "_key", "_counts", "_static")

    def __init__(self, config: FaultConfig, seed_material: str = ""):
        if not config.enabled:
            raise ValueError("FaultPlan requires an enabled FaultConfig")
        self.config = config
        digest = hashlib.blake2b(
            f"faultplan:{config.seed}:{seed_material}".encode("utf-8"),
            digest_size=16)
        self._key = digest.digest()
        self._counts: Dict[Tuple, int] = {}
        self._static: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------
    # Uniform draws
    # ------------------------------------------------------------------
    def _hash_uniform(self, label: Tuple) -> float:
        raw = hashlib.blake2b(repr(label).encode("utf-8"), digest_size=8,
                              key=self._key).digest()
        return int.from_bytes(raw, "big") / 2.0 ** 64

    def _uniform(self, *label) -> float:
        """Fresh uniform for the Nth occurrence of an operation key."""
        count = self._counts.get(label, 0)
        self._counts[label] = count + 1
        return self._hash_uniform((label, count))

    def _static_uniform(self, *label) -> float:
        """Memoized uniform — same value no matter how often queried."""
        value = self._static.get(label)
        if value is None:
            value = self._static[label] = self._hash_uniform((label, -1))
        return value

    # ------------------------------------------------------------------
    # Fault draws (called by the die / channel layers)
    # ------------------------------------------------------------------
    def factory_bad(self, die: str, plane: int, block: int) -> bool:
        """Is this block factory-marked bad?  Static per block."""
        if self.config.factory_bad_prob <= 0.0:
            return False
        return (self._static_uniform("bad", die, plane, block)
                < self.config.factory_bad_prob)

    def program_fails(self, die: str, plane: int, block: int,
                      page: int) -> bool:
        if self.config.program_fail_prob <= 0.0:
            return False
        return (self._uniform("pfail", die, plane, block, page)
                < self.config.program_fail_prob)

    def erase_fails(self, die: str, plane: int, block: int) -> bool:
        if self.config.erase_fail_prob <= 0.0:
            return False
        return (self._uniform("efail", die, plane, block)
                < self.config.erase_fail_prob)

    def stuck_busy_ps(self, die: str, kind: str, plane: int,
                      block: int) -> int:
        """Extra busy time for a stuck/slow die (0 almost always)."""
        if self.config.stuck_busy_prob <= 0.0:
            return 0
        if (self._uniform("stuck", die, kind, plane, block)
                < self.config.stuck_busy_prob):
            return self.config.stuck_busy_extra_ps
        return 0

    def read_bit_errors(self, die: str, address, rber: float,
                        codeword_bits: int, codewords: int,
                        attempt: int = 0) -> int:
        """Worst per-codeword error count drawn for one page sense.

        ``attempt`` > 0 models a read-retry rung: shifted read voltages
        scale the effective RBER by ``retry_rber_scale ** attempt``, and
        each physical re-read gets an independent draw.
        """
        if not self.config.bit_errors or codewords < 1:
            return 0
        effective = (rber * self.config.rber_scale
                     * self.config.retry_rber_scale ** attempt)
        mean = effective * codeword_bits
        worst = 0
        for codeword in range(codewords):
            u = self._uniform("rderr", die, address.plane, address.block,
                              address.page, attempt, codeword)
            errors = poisson_draw(u, mean)
            if errors > worst:
                worst = errors
        return worst
