"""ONFI channel model.

One ONFI channel is an 8-bit command/address/data bus shared by all dies on
that channel (the ways of the gang).  While a die performs its internal
array operation the bus is free, so the channel controller can interleave
transfers to other dies — this overlap is the whole point of way-level
parallelism, and the ONFI bus occupancy is what ultimately caps per-channel
throughput.

Timing model (per ONFI 2.x, asynchronous data interface by default):

* command cycle: 1 byte at ``t_cycle``;
* address cycles: 5 bytes (2 column + 3 row) at ``t_cycle``;
* data cycles: one byte per ``t_cycle``;
* fixed command overhead (``t_wb`` wait-busy, status poll) folded into
  :attr:`OnfiTiming.overhead_ps`.

The default 30 ns cycle yields ~33 MB/s of effective channel bandwidth,
which is the knob that reproduces the Fig. 3 saturation pattern (see
DESIGN.md).  Source-synchronous modes (higher speed) are available through
:meth:`OnfiTiming.source_synchronous`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel import Component, Resource, Simulator
from ..kernel.simtime import ns
from ..obs import spans as _obs


@dataclass(frozen=True)
class OnfiTiming:
    """Cycle timing of the ONFI bus."""

    #: Duration of one bus cycle (one byte transferred), picoseconds.
    cycle_ps: int = ns(30)
    #: Command + wait overhead per array command, picoseconds.
    overhead_ps: int = ns(300)
    #: Address cycles per command.
    address_cycles: int = 5
    #: Command cycles per command (first + confirm byte).
    command_cycles: int = 2

    def __post_init__(self) -> None:
        if self.cycle_ps <= 0:
            raise ValueError("cycle_ps must be positive")

    @classmethod
    def asynchronous(cls) -> "OnfiTiming":
        """Legacy asynchronous interface (~33 MB/s)."""
        return cls(cycle_ps=ns(30))

    @classmethod
    def source_synchronous(cls, mega_transfers: int = 133) -> "OnfiTiming":
        """ONFI 2.x source-synchronous interface (e.g. 133 MT/s)."""
        if mega_transfers <= 0:
            raise ValueError("mega_transfers must be positive")
        return cls(cycle_ps=int(round(1e6 / mega_transfers)))

    def command_time(self) -> int:
        """Bus time to issue command + address cycles."""
        return (self.command_cycles + self.address_cycles) * self.cycle_ps

    def data_time(self, nbytes: int) -> int:
        """Bus time to move ``nbytes`` over the 8-bit interface."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return nbytes * self.cycle_ps

    def bandwidth_mbps(self) -> float:
        """Raw data bandwidth of the bus in MB/s (one byte per cycle)."""
        return 1e6 / self.cycle_ps

    def effective_page_time(self, nbytes: int) -> int:
        """Total bus occupancy for one page transfer including overheads."""
        return self.command_time() + self.data_time(nbytes) + self.overhead_ps


class OnfiChannel(Component):
    """The shared bus of one channel, modeled as a FIFO resource.

    Transfers acquire the bus, hold it for the exact cycle count, and
    release it.  Array time is *not* spent holding the bus — the die model
    owns that — so way interleaving falls out naturally.
    """

    def __init__(self, sim: Simulator, name: str, timing: OnfiTiming,
                 parent: Component = None):
        super().__init__(sim, name, parent)
        self.timing = timing
        self.bus = Resource(sim, f"{name}.bus", capacity=1)

    def issue_command(self):
        """Occupy the bus for a command/address sequence (generator)."""
        grant = self.bus.acquire()
        yield grant
        t0 = self.sim.now if _obs.enabled else -1
        yield self.sim.timeout(self.timing.command_time() + self.timing.overhead_ps)
        self.bus.release(grant)
        if t0 >= 0:
            _obs.record_span(self.path(), "bus_cmd", t0, self.sim.now)
        self.stats.counter("commands").increment()

    def transfer(self, nbytes: int):
        """Occupy the bus for a data transfer of ``nbytes`` (generator)."""
        grant = self.bus.acquire()
        yield grant
        t0 = self.sim.now if _obs.enabled else -1
        yield self.sim.timeout(self.timing.data_time(nbytes))
        self.bus.release(grant)
        if t0 >= 0:
            _obs.record_span(self.path(), "bus_xfer", t0, self.sim.now)
        self.stats.counter("transfers").increment()
        self.stats.meter("data").record(nbytes)

    def command_and_transfer(self, nbytes: int):
        """Command + data in one bus tenure (how real controllers do it)."""
        grant = self.bus.acquire()
        yield grant
        t0 = self.sim.now if _obs.enabled else -1
        yield self.sim.timeout(self.timing.effective_page_time(nbytes))
        self.bus.release(grant)
        if t0 >= 0:
            _obs.record_span(self.path(), "bus_xfer", t0, self.sim.now)
        self.stats.counter("transfers").increment()
        self.stats.meter("data").record(nbytes)

    def utilization(self) -> float:
        """Fraction of sim time the bus was occupied."""
        return self.bus.utilization()
