"""NAND flash geometry.

NAND devices are hierarchically organized in **dies, planes, blocks and
pages** (paper, Section III-C3).  Program and read operate on pages; erase
operates on whole blocks, which forbids in-place update and motivates the
FTL / write-amplification machinery.

The default geometry models a 4 KiB-page MLC part in the spirit of the
Samsung K9-series device the paper cites, scaled so that capacity numbers
stay manageable inside a pure-Python simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple


class PageAddress(NamedTuple):
    """Physical page coordinates inside one die."""

    plane: int
    block: int
    page: int


@dataclass(frozen=True)
class NandGeometry:
    """Shape of a single NAND die.

    Attributes
    ----------
    planes_per_die:
        Independent plane count (multi-plane commands operate in lockstep).
    blocks_per_plane:
        Erase blocks per plane.
    pages_per_block:
        Pages per erase block.
    page_bytes:
        User payload bytes per page.
    spare_bytes:
        Out-of-band bytes per page (holds ECC parity and FTL metadata).
    """

    planes_per_die: int = 2
    blocks_per_plane: int = 2048
    pages_per_block: int = 128
    page_bytes: int = 4096
    spare_bytes: int = 224

    def __post_init__(self) -> None:
        for field in ("planes_per_die", "blocks_per_plane", "pages_per_block",
                      "page_bytes"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1, got {getattr(self, field)}")
        if self.spare_bytes < 0:
            raise ValueError(f"spare_bytes must be >= 0, got {self.spare_bytes}")

    @property
    def blocks_per_die(self) -> int:
        return self.planes_per_die * self.blocks_per_plane

    @property
    def pages_per_die(self) -> int:
        return self.blocks_per_die * self.pages_per_block

    @property
    def block_bytes(self) -> int:
        return self.pages_per_block * self.page_bytes

    @property
    def die_bytes(self) -> int:
        return self.pages_per_die * self.page_bytes

    @property
    def raw_page_bytes(self) -> int:
        """Payload plus spare area — what actually crosses the ONFI bus."""
        return self.page_bytes + self.spare_bytes

    def page_index(self, address: PageAddress) -> int:
        """Flatten a page address to a die-local linear page number."""
        self.validate(address)
        return ((address.plane * self.blocks_per_plane + address.block)
                * self.pages_per_block + address.page)

    def address_of(self, page_index: int) -> PageAddress:
        """Inverse of :meth:`page_index`."""
        if not 0 <= page_index < self.pages_per_die:
            raise ValueError(f"page index {page_index} out of range "
                             f"[0, {self.pages_per_die})")
        page = page_index % self.pages_per_block
        block_linear = page_index // self.pages_per_block
        block = block_linear % self.blocks_per_plane
        plane = block_linear // self.blocks_per_plane
        return PageAddress(plane, block, page)

    def validate(self, address: PageAddress) -> None:
        """Raise ValueError if the address is outside this geometry."""
        if not 0 <= address.plane < self.planes_per_die:
            raise ValueError(f"plane {address.plane} out of range")
        if not 0 <= address.block < self.blocks_per_plane:
            raise ValueError(f"block {address.block} out of range")
        if not 0 <= address.page < self.pages_per_block:
            raise ValueError(f"page {address.page} out of range")

    def iter_blocks(self) -> Iterator[tuple]:
        """Yield every (plane, block) pair."""
        for plane in range(self.planes_per_die):
            for block in range(self.blocks_per_plane):
                yield plane, block


#: Geometry used across the paper-reproduction experiments: 4 KiB MLC pages,
#: sized so one die holds 1 GiB of user data.
DEFAULT_GEOMETRY = NandGeometry()
