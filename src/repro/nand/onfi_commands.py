"""ONFI command-set tables: exact cycle counts per operation.

A refinement under :class:`~repro.nand.onfi.OnfiTiming`'s generic
command/address model: the actual ONFI 2.x command sequences with their
opcode and address cycles, so bus occupancy can be computed per operation
type rather than with one generic figure.

===========================  =======================================
operation                    sequence
===========================  =======================================
PAGE READ                    00h, 5 addr, 30h ... tR ... data out
PAGE PROGRAM                 80h, 5 addr, data in, 10h ... tPROG
BLOCK ERASE                  60h, 3 addr, D0h ... tBERS
READ STATUS                  70h, 1 data cycle
RESET                        FFh
MULTI-PLANE PAGE PROGRAM     80h,5,data,11h per plane; 10h on the last
MULTI-PLANE READ             00h,5,00h,5,...,30h
===========================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .onfi import OnfiTiming


@dataclass(frozen=True)
class OnfiCommandSpec:
    """Bus cycles of one command sequence (excluding payload data)."""

    name: str
    command_cycles: int     # opcode bytes on the bus
    address_cycles: int     # address bytes on the bus
    status_cycles: int = 0  # status polls folded into the sequence

    @property
    def total_cycles(self) -> int:
        return self.command_cycles + self.address_cycles + self.status_cycles


#: The ONFI 2.x command set used by the platform.
COMMAND_SET: Dict[str, OnfiCommandSpec] = {
    "page_read": OnfiCommandSpec("page_read", command_cycles=2,
                                 address_cycles=5, status_cycles=1),
    "page_program": OnfiCommandSpec("page_program", command_cycles=2,
                                    address_cycles=5, status_cycles=1),
    "block_erase": OnfiCommandSpec("block_erase", command_cycles=2,
                                   address_cycles=3, status_cycles=1),
    "read_status": OnfiCommandSpec("read_status", command_cycles=1,
                                   address_cycles=0, status_cycles=1),
    "reset": OnfiCommandSpec("reset", command_cycles=1, address_cycles=0),
}


def command_bus_time_ps(operation: str, timing: OnfiTiming,
                        planes: int = 1) -> int:
    """Bus occupancy of one command sequence (no payload), in ps.

    ``planes > 1`` models the interleaved multi-plane form: the command
    and address cycles repeat per plane (80h/11h chaining, or the
    multi-plane read's repeated 00h/addr groups).
    """
    spec = COMMAND_SET.get(operation)
    if spec is None:
        raise ValueError(f"unknown ONFI operation {operation!r}; "
                         f"choose from {sorted(COMMAND_SET)}")
    if planes < 1:
        raise ValueError("planes must be >= 1")
    per_plane = spec.command_cycles + spec.address_cycles
    cycles = per_plane * planes + spec.status_cycles
    return cycles * timing.cycle_ps + timing.overhead_ps


def sequence_description(operation: str, planes: int = 1) -> str:
    """Human-readable sequence (for traces and documentation)."""
    templates = {
        "page_read": "00h + 5 addr + 30h",
        "page_program": "80h + 5 addr + data + 10h",
        "block_erase": "60h + 3 addr + D0h",
        "read_status": "70h + status",
        "reset": "FFh",
    }
    base = templates.get(operation)
    if base is None:
        raise ValueError(f"unknown ONFI operation {operation!r}")
    if planes > 1:
        return f"{base} (x{planes} planes, 11h-chained)"
    return base
