"""Cycle-accurate NAND flash memory subsystem.

Implements the die/plane/block/page hierarchy, MLC timing variation
(tPROG 900 us – 3 ms, tREAD 60 us, tBERS 1 – 10 ms), the shared ONFI channel
bus, and the wear-out / RBER model that drives the ECC experiments.
"""

from .die import NandDie, NandProtocolError
from .geometry import DEFAULT_GEOMETRY, NandGeometry, PageAddress
from .onfi import OnfiChannel, OnfiTiming
from .onfi_commands import (COMMAND_SET, OnfiCommandSpec, command_bus_time_ps,
                            sequence_description)
from .timing import DEFAULT_TIMING, MlcTimingModel
from .wear import (DEFAULT_WEAR, ENDURANCE_SLACK, BlockWearState,
                   EnduranceWarning, WearModel)

__all__ = [
    "DEFAULT_GEOMETRY", "DEFAULT_TIMING", "DEFAULT_WEAR", "BlockWearState",
    "COMMAND_SET", "ENDURANCE_SLACK", "EnduranceWarning", "MlcTimingModel",
    "NandDie", "NandGeometry",
    "NandProtocolError", "OnfiChannel", "OnfiCommandSpec", "OnfiTiming",
    "PageAddress", "WearModel", "command_bus_time_ps",
    "sequence_description",
]
