"""NAND die model: a cycle-accurate state machine with legality checking.

Each die is an independent unit that can hold one array operation at a time
(read / program / erase).  The model enforces the NAND programming rules the
FTL must respect:

* a page may be programmed only if its block was erased since the last
  program of that page (no in-place update);
* pages inside a block must be programmed sequentially (ONFI requirement
  for MLC parts);
* reads of never-programmed pages are flagged.

Payload data is *not* stored (SSDExplorer is a performance platform, not a
functional one — paper Section III-A); instead each block keeps a write
pointer and wear state, which is all the FTL and ECC layers need.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..faults import FaultPlan
from ..kernel import Component, SimulationError, Simulator
from ..obs import spans as _obs
from .geometry import NandGeometry, PageAddress
from .timing import MlcTimingModel
from .wear import BlockWearState, WearModel


class NandProtocolError(SimulationError):
    """Raised when an operation violates NAND programming rules."""


class NandDie(Component):
    """One NAND die: array state machine plus per-block wear tracking.

    The ONFI channel (see :mod:`repro.nand.onfi`) handles command/data bus
    occupancy; this class models only the internal array time, during which
    the die is busy but the channel bus is free for other dies — the overlap
    that makes way-level interleaving profitable.
    """

    IDLE = "idle"
    READING = "reading"
    PROGRAMMING = "programming"
    ERASING = "erasing"

    def __init__(self, sim: Simulator, name: str, geometry: NandGeometry,
                 timing: MlcTimingModel, wear_model: WearModel,
                 parent: Optional[Component] = None,
                 initial_pe_cycles: int = 0):
        super().__init__(sim, name, parent)
        self.geometry = geometry
        self.timing = timing
        self.wear_model = wear_model
        self.initial_pe_cycles = initial_pe_cycles
        self.state = self.IDLE
        self._busy_until = 0
        #: Extra array time per additional plane in a multi-plane command
        #: (ONFI interleaved-plane issue overhead).
        self.multiplane_overhead_ps = 2_000_000  # 2 us
        # (plane, block) -> write pointer (next programmable page index).
        # Blocks absent from the dict sit at `_preload_default`: 0 for a
        # factory-fresh die, pages_per_block after preload_all() — which
        # makes whole-die preloading O(1) instead of O(blocks).
        self._write_pointers: Dict[Tuple[int, int], int] = {}
        self._preload_default = 0
        # (plane, block) -> BlockWearState, created lazily.
        self._wear: Dict[Tuple[int, int], BlockWearState] = {}
        self._busy_tracker = self.stats.utilization("array")
        self._obs_t0 = -1  # array-op start when observability is on
        # Fault injection: installed by the device via set_fault_plan();
        # None keeps every fault branch a single attribute check.
        self.fault_plan: Optional[FaultPlan] = None
        self._fault_id = name
        self._bad_blocks: Set[Tuple[int, int]] = set()
        self._factory_checked: Set[Tuple[int, int]] = set()
        self.last_program_failed = False
        self.last_erase_failed = False

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def is_busy(self) -> bool:
        return self.state != self.IDLE

    def pe_cycles(self, plane: int, block: int) -> int:
        """Program/erase cycles endured by a block."""
        state = self._wear.get((plane, block))
        endured = state.pe_cycles if state else 0
        return self.initial_pe_cycles + endured

    def wear_fraction(self, plane: int, block: int) -> float:
        """Normalized wear of a block (1.0 == rated endurance)."""
        return self.wear_model.normalized(self.pe_cycles(plane, block))

    def write_pointer(self, plane: int, block: int) -> int:
        """Next page due for programming in a block (0 if erased/fresh)."""
        return self._write_pointers.get((plane, block),
                                        self._preload_default)

    def rber(self, plane: int, block: int) -> float:
        """Raw bit error rate of pages in this block at current wear."""
        return self.wear_model.rber(self.pe_cycles(plane, block))

    # ------------------------------------------------------------------
    # Fault injection and bad-block state
    # ------------------------------------------------------------------
    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Install the device's fault schedule (None disables faults)."""
        self.fault_plan = plan
        # Draw keys must be unique per die across the whole device, and
        # path() is too hot to walk per operation — cache it once here.
        self._fault_id = self.path()

    def is_bad_block(self, plane: int, block: int) -> bool:
        """Grown or factory bad?  Factory draws are memoized lazily."""
        key = (plane, block)
        if key in self._bad_blocks:
            return True
        plan = self.fault_plan
        if plan is not None and key not in self._factory_checked:
            self._factory_checked.add(key)
            if plan.factory_bad(self._fault_id, plane, block):
                self._bad_blocks.add(key)
                self.stats.counter("factory_bad_blocks").increment()
                return True
        return False

    def mark_bad(self, plane: int, block: int) -> None:
        """Retire a block (grown bad: erase failure or program-fail)."""
        key = (plane, block)
        if key not in self._bad_blocks:
            self._bad_blocks.add(key)
            self.stats.counter("grown_bad_blocks").increment()

    @property
    def bad_block_count(self) -> int:
        return len(self._bad_blocks)

    def draw_read_errors(self, address: PageAddress, codeword_bits: int,
                         codewords: int, attempt: int = 0) -> int:
        """Worst per-codeword bit-error count for one sense of a page.

        The draw is sampled from this block's wear-state RBER, so faults
        emerge from wear rather than from a hand-set constant.  Each
        retry ``attempt`` re-draws at the ladder's reduced effective RBER.
        """
        plan = self.fault_plan
        if plan is None:
            return 0
        errors = plan.read_bit_errors(
            self._fault_id, address, self.rber(address.plane, address.block),
            codeword_bits, codewords, attempt)
        if errors:
            self.stats.counter("read_bit_errors").increment(errors)
        return errors

    # ------------------------------------------------------------------
    # Array operations (generator processes: yield them with sim.process
    # or from within another process)
    # ------------------------------------------------------------------
    def read(self, address: PageAddress):
        """Array read: sense a page into the page register.

        Generator; completes after ``t_READ``.  Returns the block RBER so
        the ECC model downstream can decide decode effort.
        """
        self.geometry.validate(address)
        key = (address.plane, address.block)
        if address.page >= self._write_pointers.get(key,
                                                    self._preload_default):
            self.stats.counter("reads_unwritten").increment()
        self._begin(self.READING)
        duration = self.timing.read_time(address.page,
                                         self.wear_fraction(*key))
        if self.fault_plan is not None:
            stuck = self.fault_plan.stuck_busy_ps(
                self._fault_id, "read", address.plane, address.block)
            if stuck:
                duration += stuck
                self.stats.counter("stuck_busy_faults").increment()
        yield self.sim.timeout(duration)
        self._end()
        wear_state = self._wear_state(key)
        wear_state.record_read()
        self.stats.counter("reads").increment()
        return self.rber(*key)

    def program(self, address: PageAddress):
        """Array program; enforces erase-before-write and page order."""
        self.geometry.validate(address)
        key = (address.plane, address.block)
        pointer = self._write_pointers.get(key, self._preload_default)
        if address.page != pointer:
            raise NandProtocolError(
                f"{self.path()}: program page {address.page} of block "
                f"{key} violates sequential-programming rule "
                f"(write pointer is {pointer})")
        self._begin(self.PROGRAMMING)
        duration = self.timing.program_time(address.page, address.block,
                                            self.wear_fraction(*key))
        if self.fault_plan is not None:
            stuck = self.fault_plan.stuck_busy_ps(
                self._fault_id, "program", address.plane, address.block)
            if stuck:
                duration += stuck
                self.stats.counter("stuck_busy_faults").increment()
        yield self.sim.timeout(duration)
        self._end()
        self._write_pointers[key] = pointer + 1
        self._wear_state(key).record_program()
        self.stats.counter("programs").increment()
        if self.fault_plan is not None:
            # Program-status FAIL: the array time is spent, the page is
            # consumed, but the controller must treat the data as lost
            # and remap (the page register still holds it).
            self.last_program_failed = self.fault_plan.program_fails(
                self._fault_id, address.plane, address.block, address.page)
            if self.last_program_failed:
                self.stats.counter("program_fails").increment()
        return duration

    def erase(self, plane: int, block: int):
        """Block erase; resets the write pointer and adds a P/E cycle."""
        self.geometry.validate(PageAddress(plane, block, 0))
        key = (plane, block)
        self._begin(self.ERASING)
        duration = self.timing.erase_time(block, self.wear_fraction(*key))
        if self.fault_plan is not None:
            stuck = self.fault_plan.stuck_busy_ps(
                self._fault_id, "erase", plane, block)
            if stuck:
                duration += stuck
                self.stats.counter("stuck_busy_faults").increment()
        yield self.sim.timeout(duration)
        self._end()
        self._write_pointers[key] = 0
        self._wear_state(key).record_erase()
        self.stats.counter("erases").increment()
        if self.fault_plan is not None:
            # Erase-status FAIL grows a bad block: the block is retired
            # on the spot and must never be allocated again.
            self.last_erase_failed = self.fault_plan.erase_fails(
                self._fault_id, plane, block)
            if self.last_erase_failed:
                self.stats.counter("erase_fails").increment()
                self.mark_bad(plane, block)
        return duration

    # ------------------------------------------------------------------
    # Multi-plane operations (ONFI interleaved-plane commands)
    # ------------------------------------------------------------------
    def _validate_multiplane(self, addresses) -> None:
        if len(addresses) < 2:
            raise ValueError("multi-plane operations need >= 2 addresses")
        planes = [address.plane for address in addresses]
        if len(set(planes)) != len(planes):
            raise NandProtocolError(
                f"{self.path()}: multi-plane addresses must use distinct "
                f"planes, got {planes}")
        pages = {address.page for address in addresses}
        if len(pages) != 1:
            raise NandProtocolError(
                f"{self.path()}: multi-plane addresses must share the page "
                f"offset, got {sorted(pages)}")
        for address in addresses:
            self.geometry.validate(address)

    def program_multiplane(self, addresses):
        """Program one page in each of several planes concurrently.

        Array time is the slowest plane's tPROG plus a small per-extra-
        plane issue overhead — the parallelism that makes multi-plane
        commands worth their addressing restrictions.
        """
        self._validate_multiplane(addresses)
        for address in addresses:
            key = (address.plane, address.block)
            pointer = self._write_pointers.get(key, 0)
            if address.page != pointer:
                raise NandProtocolError(
                    f"{self.path()}: multi-plane program page "
                    f"{address.page} of block {key} violates the "
                    f"sequential rule (pointer {pointer})")
        self._begin(self.PROGRAMMING)
        duration = max(
            self.timing.program_time(address.page, address.block,
                                     self.wear_fraction(address.plane,
                                                        address.block))
            for address in addresses)
        duration += self.multiplane_overhead_ps * (len(addresses) - 1)
        yield self.sim.timeout(duration)
        self._end()
        for address in addresses:
            key = (address.plane, address.block)
            self._write_pointers[key] = address.page + 1
            self._wear_state(key).record_program()
        self.stats.counter("programs").increment(len(addresses))
        self.stats.counter("multiplane_programs").increment()
        return duration

    def read_multiplane(self, addresses):
        """Sense one page in each of several planes concurrently."""
        self._validate_multiplane(addresses)
        self._begin(self.READING)
        duration = max(
            self.timing.read_time(address.page,
                                  self.wear_fraction(address.plane,
                                                     address.block))
            for address in addresses)
        duration += self.multiplane_overhead_ps * (len(addresses) - 1)
        yield self.sim.timeout(duration)
        self._end()
        rbers = []
        for address in addresses:
            key = (address.plane, address.block)
            self._wear_state(key).record_read()
            rbers.append(self.rber(*key))
        self.stats.counter("reads").increment(len(addresses))
        self.stats.counter("multiplane_reads").increment()
        return rbers

    def erase_multiplane(self, blocks):
        """Erase one block in each of several planes concurrently.

        ``blocks`` is a list of (plane, block) pairs on distinct planes.
        """
        if len(blocks) < 2:
            raise ValueError("multi-plane erase needs >= 2 blocks")
        planes = [plane for plane, __ in blocks]
        if len(set(planes)) != len(planes):
            raise NandProtocolError(
                f"{self.path()}: multi-plane erase needs distinct planes")
        for plane, block in blocks:
            self.geometry.validate(PageAddress(plane, block, 0))
        self._begin(self.ERASING)
        duration = max(
            self.timing.erase_time(block, self.wear_fraction(plane, block))
            for plane, block in blocks)
        duration += self.multiplane_overhead_ps * (len(blocks) - 1)
        yield self.sim.timeout(duration)
        self._end()
        for plane, block in blocks:
            self._write_pointers[(plane, block)] = 0
            self._wear_state((plane, block)).record_erase()
        self.stats.counter("erases").increment(len(blocks))
        self.stats.counter("multiplane_erases").increment()
        return duration

    def preload_block(self, plane: int, block: int,
                      pages: Optional[int] = None) -> None:
        """Mark a block as already programmed (zero simulated time).

        Used to set up read workloads without simulating the fill pass —
        the equivalent of shipping a pre-imaged drive to the testbench.
        """
        self.geometry.validate(PageAddress(plane, block, 0))
        count = self.geometry.pages_per_block if pages is None else pages
        if not 0 <= count <= self.geometry.pages_per_block:
            raise ValueError(f"pages {count} out of range")
        self._write_pointers[(plane, block)] = count

    def preload_all(self) -> None:
        """Mark every block of the die fully programmed, in O(1).

        Equivalent to calling :meth:`preload_block` for every block —
        blocks with an explicit pointer keep it; everything else reads
        as fully written until erased.
        """
        self._preload_default = self.geometry.pages_per_block

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _wear_state(self, key: Tuple[int, int]) -> BlockWearState:
        state = self._wear.get(key)
        if state is None:
            state = self._wear[key] = BlockWearState()
        return state

    def _begin(self, new_state: str) -> None:
        if self.state != self.IDLE:
            raise NandProtocolError(
                f"{self.path()}: command issued while die is {self.state}")
        self.state = new_state
        self._busy_tracker.set_busy()
        self._obs_t0 = self.sim.now if _obs.enabled else -1

    def _end(self) -> None:
        if self._obs_t0 >= 0:
            # Name the component span after the array operation so the
            # activity table separates sense/program/erase pressure.
            _obs.record_span(self.path(), self.state, self._obs_t0,
                             self.sim.now)
            self._obs_t0 = -1
        self.state = self.IDLE
        self._busy_tracker.set_idle()

    def utilization(self) -> float:
        """Fraction of sim time the array spent busy."""
        return self._busy_tracker.utilization()
