"""Wear-out and raw bit error rate (RBER) modeling.

The Fig. 5 experiment of the paper sweeps "normalized rated endurance"
(P/E cycles divided by the rated endurance of the MLC part) and observes the
SSD-level throughput consequences through the ECC subsystem.  This module
provides:

* :class:`WearModel` — RBER as a function of P/E cycles.  MLC RBER growth is
  well described by a power law ``RBER(pe) = rber_fresh + a * pe^b``
  (Mielke et al. / the cross-layer characterization the paper cites in
  [22]); we use an exponent of 2 with coefficients calibrated so that a
  40-bit-per-1KiB BCH code is exactly exhausted at rated endurance.
* :class:`BlockWearState` — per-block program/erase accounting.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass


class EnduranceWarning(UserWarning):
    """A wear/ECC model was queried beyond its calibrated endurance."""


#: Queries up to this fraction beyond rated endurance stay silent: GC
#: traffic routinely pushes end-of-life blocks a few cycles past rated
#: during a run, which is drift, not a modeling error.
ENDURANCE_SLACK = 0.05


@dataclass(frozen=True)
class WearModel:
    """Raw bit error rate versus program/erase cycles.

    ``RBER(pe) = rber_fresh + growth * (pe / rated_endurance)**exponent``

    The defaults are calibrated for a 2-bit MLC part rated for 3000 P/E
    cycles protected by BCH over 1 KiB codewords: a fresh device needs only
    a handful of correctable bits, while at rated endurance the required
    correction capability reaches 40 bits — the fixed-BCH worst case used
    in the paper's Fig. 5.
    """

    rated_endurance: int = 3000
    rber_fresh: float = 1.0e-6
    rber_growth: float = 1.35e-3
    exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.rated_endurance < 1:
            raise ValueError("rated_endurance must be >= 1")
        if self.rber_fresh < 0 or self.rber_growth < 0:
            raise ValueError("RBER coefficients must be non-negative")

    def rber(self, pe_cycles: int) -> float:
        """Raw bit error rate after ``pe_cycles`` program/erase cycles.

        The power law is calibrated only up to rated endurance (the
        correction table tops out there too), so beyond it the RBER is
        *clamped* at the end-of-life value instead of extrapolated.
        Queries more than ``ENDURANCE_SLACK`` past rated warn once per
        model instance — that regime has no characterization data.
        """
        if pe_cycles < 0:
            raise ValueError(f"pe_cycles must be >= 0, got {pe_cycles}")
        if pe_cycles > self.rated_endurance:
            self._warn_beyond_endurance(pe_cycles)
            pe_cycles = self.rated_endurance
        wear = pe_cycles / self.rated_endurance
        return self.rber_fresh + self.rber_growth * wear ** self.exponent

    def _warn_beyond_endurance(self, pe_cycles: int) -> None:
        if pe_cycles <= self.rated_endurance * (1.0 + ENDURANCE_SLACK):
            return
        if getattr(self, "_warned_endurance", False):
            return
        object.__setattr__(self, "_warned_endurance", True)  # frozen dc
        warnings.warn(
            f"RBER queried at {pe_cycles} P/E cycles, beyond rated "
            f"endurance {self.rated_endurance}; clamping to the "
            f"end-of-life value (no characterization data past rated)",
            EnduranceWarning, stacklevel=3)

    def normalized(self, pe_cycles: int) -> float:
        """P/E cycles expressed as a fraction of rated endurance."""
        return pe_cycles / self.rated_endurance

    def pe_for_normalized(self, fraction: float) -> int:
        """Inverse of :meth:`normalized` (clamped at zero)."""
        return max(0, int(round(fraction * self.rated_endurance)))

    def required_correction(self, pe_cycles: int, codeword_bits: int,
                            target_page_fail_prob: float = 1e-11) -> int:
        """Correction capability ``t`` needed for a codeword at this wear.

        Bit errors in a codeword of ``codeword_bits`` bits with error
        probability ``p`` are binomial; we use the Poisson-tail bound
        (mean ``m = p * n``) and pick the smallest ``t`` such that
        ``P[errors > t] <= target_page_fail_prob``.
        """
        if codeword_bits < 1:
            raise ValueError("codeword_bits must be >= 1")
        mean = self.rber(pe_cycles) * codeword_bits
        if mean == 0:
            return 0
        # P[X > t] for Poisson(mean): 1 - CDF(t); iterate terms directly.
        term = math.exp(-mean)
        cdf = term
        t = 0
        while 1.0 - cdf > target_page_fail_prob:
            t += 1
            term *= mean / t
            cdf += term
            if t > 512:
                raise ValueError(
                    f"RBER {self.rber(pe_cycles):.3g} is uncorrectable for "
                    f"{codeword_bits}-bit codewords")
        return t


class BlockWearState:
    """Program/erase accounting for one erase block."""

    __slots__ = ("pe_cycles", "programmed_pages", "reads")

    def __init__(self) -> None:
        self.pe_cycles = 0
        self.programmed_pages = 0
        self.reads = 0

    def record_erase(self) -> None:
        self.pe_cycles += 1
        self.programmed_pages = 0

    def record_program(self) -> None:
        self.programmed_pages += 1

    def record_read(self) -> None:
        self.reads += 1


#: Default wear model shared by the experiments.
DEFAULT_WEAR = WearModel()
