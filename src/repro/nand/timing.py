"""NAND array-operation timing.

The paper models an MLC technology with

* ``t_PROG``  ranging from 900 us to 3 ms (page-position dependent),
* ``t_READ``  of 60 us, and
* ``t_BERS``  ranging from 1 ms to 10 ms (wear dependent),

citing the Samsung K9XXG08UXM datasheet and NANDFlashSim's intrinsic-latency
variation modeling.  We reproduce that variation deterministically:

* MLC pages are paired — even pages map to fast (LSB-like) programming,
  odd pages to slow (MSB-like) programming.  A small per-block jitter,
  derived from a hash of the block index, spreads values across the band
  without requiring a random number generator (keeping runs reproducible).
* Erase time starts at ``t_bers_min`` for a fresh block and climbs toward
  ``t_bers_max`` as program/erase cycles accumulate.
* Wear also slows programming slightly (charge trapping requires more
  verify pulses near end of life).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel.simtime import ms, us


def _block_jitter(block: int) -> float:
    """Deterministic pseudo-jitter in [0, 1) from a block index."""
    # Simple integer hash (xorshift-multiply); avoids RNG state on purpose.
    value = (block * 2654435761) & 0xFFFFFFFF
    value ^= value >> 16
    return (value & 0xFFFF) / 65536.0


@dataclass(frozen=True)
class MlcTimingModel:
    """Parametric MLC timing with intrinsic latency variation.

    All durations are returned in picoseconds.
    """

    t_read_ps: int = us(60)
    t_prog_fast_ps: int = us(900)
    t_prog_slow_ps: int = ms(3)
    t_bers_min_ps: int = ms(1)
    t_bers_max_ps: int = ms(10)
    #: Fractional tPROG slowdown at rated endurance (wear=1.0).
    prog_wear_slope: float = 0.12
    #: Fraction of the fast/slow band covered by per-block jitter.
    jitter_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.t_prog_fast_ps > self.t_prog_slow_ps:
            raise ValueError("t_prog_fast_ps must not exceed t_prog_slow_ps")
        if self.t_bers_min_ps > self.t_bers_max_ps:
            raise ValueError("t_bers_min_ps must not exceed t_bers_max_ps")
        if self.t_read_ps <= 0:
            raise ValueError("t_read_ps must be positive")

    def read_time(self, page: int = 0, wear: float = 0.0) -> int:
        """Array-to-register sense time (page position independent)."""
        return self.t_read_ps

    def program_time(self, page: int, block: int = 0, wear: float = 0.0) -> int:
        """Register-to-array program time for one page.

        Even (LSB-paired) pages program near the fast corner; odd (MSB)
        pages near the slow corner, with deterministic per-block jitter and
        a mild wear slowdown.
        """
        band = self.t_prog_slow_ps - self.t_prog_fast_ps
        if page % 2 == 0:
            base = self.t_prog_fast_ps
        else:
            base = self.t_prog_slow_ps - int(band * self.jitter_fraction)
        jitter = int(band * self.jitter_fraction * _block_jitter(block * 131 + page))
        duration = base + jitter
        duration = int(duration * (1.0 + self.prog_wear_slope * max(0.0, wear)))
        return min(duration, int(self.t_prog_slow_ps * (1.0 + self.prog_wear_slope)))

    def erase_time(self, block: int = 0, wear: float = 0.0) -> int:
        """Block erase time; grows from the min toward the max with wear."""
        wear = min(max(wear, 0.0), 1.0)
        band = self.t_bers_max_ps - self.t_bers_min_ps
        jitter = int(band * 0.05 * _block_jitter(block))
        return self.t_bers_min_ps + int(band * wear) + jitter

    def mean_program_time(self, wear: float = 0.0) -> int:
        """Average tPROG over a page pair (used by analytic estimates)."""
        fast = self.program_time(0, 0, wear)
        slow = self.program_time(1, 0, wear)
        return (fast + slow) // 2

    @classmethod
    def slc(cls) -> "MlcTimingModel":
        """Single-level-cell corner: fast, uniform programming.

        Representative of SLC parts of the era (tPROG ~200-300 us,
        tREAD ~25 us, tBERS ~0.7-2 ms).
        """
        return cls(t_read_ps=us(25), t_prog_fast_ps=us(200),
                   t_prog_slow_ps=us(300), t_bers_min_ps=us(700),
                   t_bers_max_ps=ms(2), prog_wear_slope=0.05)

    @classmethod
    def mlc(cls) -> "MlcTimingModel":
        """The paper's 2-bit MLC corner (the class default)."""
        return cls()

    @classmethod
    def tlc(cls) -> "MlcTimingModel":
        """Triple-level-cell corner: slower and more page-type spread.

        Representative of early TLC (tPROG up to ~5 ms on the slow pages,
        tREAD ~90 us, tBERS up to ~15 ms).
        """
        return cls(t_read_ps=us(90), t_prog_fast_ps=ms(1.2),
                   t_prog_slow_ps=ms(5), t_bers_min_ps=ms(2),
                   t_bers_max_ps=ms(15), prog_wear_slope=0.18)


#: The timing instance used throughout the paper experiments.
DEFAULT_TIMING = MlcTimingModel()
