"""Instruction set of the embedded controller core.

The paper's CPU is an ARM7TDMI modeled "pipeline-, pinout- and
cycle-accurate".  We define FW-RISC, a compact load/store ISA with
ARM7-like cycle costs (3-stage pipeline: 1-cycle ALU ops, multi-cycle
loads/stores and taken branches), rich enough to express real SSD firmware
— command fetch, FTL arithmetic, descriptor programming — while staying
fully deterministic.

Sixteen general registers ``r0..r15``; ``r14`` doubles as the link
register (alias ``lr``), ``r15`` as the stack pointer (alias ``sp``).
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Optional, Tuple

NUM_REGISTERS = 16
LINK_REGISTER = 14
STACK_POINTER = 15


class Opcode(enum.Enum):
    """FW-RISC opcodes."""

    MOV = "mov"      # mov rd, (rs | imm)
    ADD = "add"      # add rd, rs, (rt | imm)
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MUL = "mul"
    DIV = "div"      # unsigned; div-by-zero traps
    LDR = "ldr"      # ldr rd, [rs + imm]
    STR = "str"      # str rs, [rd + imm]
    B = "b"          # unconditional branch
    BEQ = "beq"      # beq rs, rt, label
    BNE = "bne"
    BLT = "blt"      # unsigned less-than
    BGE = "bge"
    BL = "bl"        # call: lr <- return address
    RET = "ret"      # pc <- lr
    WFI = "wfi"      # wait for interrupt (doorbell)
    NOP = "nop"
    HALT = "halt"


#: Base cycle cost per opcode (ARM7TDMI-flavored; memory ops add wait
#: states from the memory system, branches add penalty only when taken).
CYCLE_COSTS = {
    Opcode.MOV: 1, Opcode.ADD: 1, Opcode.SUB: 1, Opcode.AND: 1,
    Opcode.OR: 1, Opcode.XOR: 1, Opcode.SHL: 1, Opcode.SHR: 1,
    Opcode.MUL: 3, Opcode.DIV: 6,
    Opcode.LDR: 3, Opcode.STR: 2,
    Opcode.B: 3, Opcode.BEQ: 1, Opcode.BNE: 1, Opcode.BLT: 1,
    Opcode.BGE: 1, Opcode.BL: 3, Opcode.RET: 3,
    Opcode.WFI: 1, Opcode.NOP: 1, Opcode.HALT: 1,
}

#: Extra cycles when a conditional branch is taken (pipeline flush).
TAKEN_BRANCH_PENALTY = 2

MASK32 = 0xFFFFFFFF


class Operand(NamedTuple):
    """Either a register index or an immediate value."""

    is_register: bool
    value: int

    @classmethod
    def register(cls, index: int) -> "Operand":
        if not 0 <= index < NUM_REGISTERS:
            raise ValueError(f"register index {index} out of range")
        return cls(True, index)

    @classmethod
    def immediate(cls, value: int) -> "Operand":
        return cls(False, value & MASK32)


class Instruction(NamedTuple):
    """One decoded instruction."""

    opcode: Opcode
    rd: Optional[int] = None             # destination / base register
    operands: Tuple[Operand, ...] = ()
    target: Optional[int] = None         # branch target (instruction index)
    label: Optional[str] = None          # unresolved branch label

    def __str__(self) -> str:
        parts = [self.opcode.value]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        for operand in self.operands:
            parts.append(f"r{operand.value}" if operand.is_register
                         else str(operand.value))
        if self.label is not None:
            parts.append(self.label)
        elif self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)


def alu_evaluate(opcode: Opcode, a: int, b: int) -> int:
    """Evaluate a two-operand ALU operation on 32-bit unsigned values."""
    if opcode is Opcode.ADD:
        return (a + b) & MASK32
    if opcode is Opcode.SUB:
        return (a - b) & MASK32
    if opcode is Opcode.AND:
        return a & b
    if opcode is Opcode.OR:
        return a | b
    if opcode is Opcode.XOR:
        return a ^ b
    if opcode is Opcode.SHL:
        return (a << (b & 31)) & MASK32
    if opcode is Opcode.SHR:
        return (a & MASK32) >> (b & 31)
    if opcode is Opcode.MUL:
        return (a * b) & MASK32
    if opcode is Opcode.DIV:
        if b == 0:
            raise ZeroDivisionError("firmware divide by zero")
        return (a // b) & MASK32
    raise ValueError(f"{opcode} is not an ALU opcode")
