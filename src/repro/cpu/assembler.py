"""Two-pass assembler for FW-RISC.

Syntax (one instruction per line, ``;`` or ``#`` starts a comment)::

    loop:                       ; label
        ldr  r1, [r2 + 4]       ; load
        add  r3, r1, 16         ; register-immediate ALU
        str  r3, [r2 + 8]
        bne  r1, r0, loop       ; conditional branch
        halt

Register aliases: ``lr`` (r14) and ``sp`` (r15).  Immediates accept
decimal, hex (``0x..``) and binary (``0b..``).
"""

from __future__ import annotations

import re
from typing import Dict, List

from .isa import (Instruction, LINK_REGISTER, Opcode, Operand,
                  STACK_POINTER)


class AssemblyError(ValueError):
    """Raised for malformed assembly source."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_MEM_RE = re.compile(
    r"^\[\s*(?P<base>\w+)\s*(?:\+\s*(?P<offset>-?\w+)\s*)?\]$")

_ALU_OPS = {Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
            Opcode.SHL, Opcode.SHR, Opcode.MUL, Opcode.DIV}
_COND_BRANCHES = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}


def _parse_register(token: str, line_number: int) -> int:
    lowered = token.lower()
    if lowered == "lr":
        return LINK_REGISTER
    if lowered == "sp":
        return STACK_POINTER
    if lowered.startswith("r") and lowered[1:].isdigit():
        index = int(lowered[1:])
        if 0 <= index < 16:
            return index
    raise AssemblyError(line_number, f"invalid register {token!r}")


def _parse_operand(token: str, line_number: int) -> Operand:
    lowered = token.lower()
    if (lowered in ("lr", "sp")
            or (lowered.startswith("r") and lowered[1:].isdigit())):
        return Operand.register(_parse_register(token, line_number))
    try:
        return Operand.immediate(int(token, 0))
    except ValueError:
        raise AssemblyError(line_number, f"invalid operand {token!r}") from None


def _split_fields(body: str) -> List[str]:
    # Split on commas first, then trim; memory operands keep their brackets.
    return [field.strip() for field in body.split(",") if field.strip()]


def assemble(source: str) -> List[Instruction]:
    """Assemble source text into an executable instruction list."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    pending: List[tuple] = []  # (instruction index, label, line number)

    for line_number, raw_line in enumerate(source.splitlines(), start=1):
        line = re.split(r"[;#]", raw_line, maxsplit=1)[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            name = label_match.group(1)
            if name in labels:
                raise AssemblyError(line_number, f"duplicate label {name!r}")
            labels[name] = len(instructions)
            continue

        mnemonic, __, body = line.partition(" ")
        try:
            opcode = Opcode(mnemonic.lower())
        except ValueError:
            raise AssemblyError(line_number,
                                f"unknown mnemonic {mnemonic!r}") from None
        fields = _split_fields(body)
        instruction = _encode(opcode, fields, line_number)
        if instruction.label is not None:
            pending.append((len(instructions), instruction.label, line_number))
        instructions.append(instruction)

    resolved = list(instructions)
    for index, label, line_number in pending:
        if label not in labels:
            raise AssemblyError(line_number, f"undefined label {label!r}")
        resolved[index] = resolved[index]._replace(target=labels[label])
    return resolved


def _encode(opcode: Opcode, fields: List[str],
            line_number: int) -> Instruction:
    if opcode in (Opcode.NOP, Opcode.HALT, Opcode.WFI, Opcode.RET):
        if fields:
            raise AssemblyError(line_number,
                                f"{opcode.value} takes no operands")
        return Instruction(opcode)

    if opcode is Opcode.MOV:
        if len(fields) != 2:
            raise AssemblyError(line_number, "mov needs: rd, (rs|imm)")
        rd = _parse_register(fields[0], line_number)
        return Instruction(opcode, rd=rd,
                           operands=(_parse_operand(fields[1], line_number),))

    if opcode in _ALU_OPS:
        if len(fields) != 3:
            raise AssemblyError(line_number,
                                f"{opcode.value} needs: rd, rs, (rt|imm)")
        rd = _parse_register(fields[0], line_number)
        lhs = Operand.register(_parse_register(fields[1], line_number))
        rhs = _parse_operand(fields[2], line_number)
        return Instruction(opcode, rd=rd, operands=(lhs, rhs))

    if opcode is Opcode.LDR:
        if len(fields) != 2:
            raise AssemblyError(line_number, "ldr needs: rd, [rs + imm]")
        rd = _parse_register(fields[0], line_number)
        base, offset = _parse_memory(fields[1], line_number)
        return Instruction(opcode, rd=rd,
                           operands=(Operand.register(base),
                                     Operand.immediate(offset)))

    if opcode is Opcode.STR:
        if len(fields) != 2:
            raise AssemblyError(line_number, "str needs: rs, [rd + imm]")
        rs = _parse_register(fields[0], line_number)
        base, offset = _parse_memory(fields[1], line_number)
        return Instruction(opcode, rd=base,
                           operands=(Operand.register(rs),
                                     Operand.immediate(offset)))

    if opcode in (Opcode.B, Opcode.BL):
        if len(fields) != 1:
            raise AssemblyError(line_number, f"{opcode.value} needs a label")
        return Instruction(opcode, label=fields[0])

    if opcode in _COND_BRANCHES:
        if len(fields) != 3:
            raise AssemblyError(line_number,
                                f"{opcode.value} needs: rs, rt, label")
        lhs = Operand.register(_parse_register(fields[0], line_number))
        rhs = _parse_operand(fields[1], line_number)
        return Instruction(opcode, operands=(lhs, rhs), label=fields[2])

    raise AssemblyError(line_number, f"unhandled opcode {opcode}")


def _parse_memory(token: str, line_number: int) -> tuple:
    match = _MEM_RE.match(token)
    if not match:
        raise AssemblyError(line_number,
                            f"invalid memory operand {token!r}")
    base = _parse_register(match.group("base"), line_number)
    offset_text = match.group("offset")
    offset = int(offset_text, 0) if offset_text else 0
    return base, offset
