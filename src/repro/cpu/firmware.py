"""SSD firmware and the two CPU service models.

The paper stresses that SSDExplorer supports **both** "an actual FTL
implementation and its abstraction through a WAF model", and that the CPU
executes "the real execution of the SSD firmware (if available) or of its
abstracted behavior".  Mirroring that, the platform offers:

* :class:`FirmwareCpu` — a real :class:`~repro.cpu.core.CpuCore` running
  the FW-RISC command-dispatch firmware below.  Each host command is
  pushed into the firmware's memory-mapped inbox; the core wakes from WFI,
  reads the command registers, performs the FTL lookup through the FTL
  accelerator window, programs a channel descriptor, and rings the kick
  register — all in simulated time, over the (optional) AHB.
* :class:`AbstractCpu` — a parametric service model: each command costs a
  fixed number of core cycles (default back-annotated from measuring the
  firmware above), with ``n_cores`` commands in flight at once.

Both expose the same ``process_command`` generator API, so the SSD device
can swap them freely ("plug & play", as the paper puts it).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..kernel import Component, Event, Resource, Simulator
from ..kernel.simtime import Clock
from ..interconnect import AhbBus, AhbSlaveConfig
from .assembler import assemble
from .core import CpuCore
from .memory import MemoryMap

HOSTIF_BASE = 0x8000_0000
FTL_BASE = 0x9000_0000
CHANNEL_BASE = 0xA000_0000
CHANNEL_STRIDE = 0x100

#: The command-dispatch loop, in FW-RISC assembly.  Register conventions:
#: r0 = constant zero, r8 = host-IF window, r9 = FTL window, r10 = channel
#: descriptor window.
DISPATCH_FIRMWARE = """
; --- init ------------------------------------------------------------
    mov  r0, 0
    mov  r8, 0x80000000      ; host interface registers
    mov  r9, 0x90000000      ; FTL accelerator registers
    mov  r10, 0xA0000000     ; channel descriptor windows
main:
    wfi                      ; sleep until the host rings the doorbell
poll:
    ldr  r1, [r8 + 0]        ; commands pending?
    beq  r1, r0, main
    ldr  r2, [r8 + 4]        ; opcode
    ldr  r3, [r8 + 8]        ; lba
    ldr  r4, [r8 + 12]       ; sector count
; --- FTL lookup (WAF-abstracted or real, behind the accelerator) -----
    str  r3, [r9 + 0]        ; submit lba
    ldr  r5, [r9 + 4]        ; channel
    ldr  r6, [r9 + 8]        ; packed way/die
; --- program the channel/way controller descriptor -------------------
    shl  r7, r5, 8           ; r7 = channel * 0x100
    add  r7, r7, r10
    str  r2, [r7 + 0]        ; opcode
    str  r3, [r7 + 4]        ; lba
    str  r6, [r7 + 8]        ; way/die
    str  r4, [r7 + 12]       ; sector count
    str  r1, [r7 + 16]       ; kick (any value rings the doorbell)
    str  r0, [r8 + 16]       ; acknowledge / pop the host command
    b    poll
"""


class FirmwareCpu(Component):
    """A real core running :data:`DISPATCH_FIRMWARE`.

    ``process_command(opcode, lba, sectors, placement)`` enqueues a command
    and completes once the firmware has programmed the channel descriptor
    for it.  ``placement`` is the dict the FTL accelerator window serves to
    the firmware (keys: ``channel``, ``way``, ``die``).
    """

    def __init__(self, sim: Simulator, name: str = "cpu",
                 clock: Optional[Clock] = None,
                 ahb: Optional[AhbBus] = None,
                 parent: Optional[Component] = None):
        super().__init__(sim, name, parent)
        self.clock = clock or Clock("cpu", frequency_hz=200e6)
        self._inbox: Deque[Dict] = deque()
        self._active: Optional[Dict] = None
        self._descriptor: Dict[str, int] = {}

        memory = MemoryMap()
        memory.add_mmio(HOSTIF_BASE, 0x20,
                        read=self._hostif_read, write=self._hostif_write,
                        ahb_slave="hostif" if ahb else None)
        memory.add_mmio(FTL_BASE, 0x20,
                        read=self._ftl_read, write=self._ftl_write,
                        ahb_slave="ftl" if ahb else None)
        # One descriptor window per possible channel (64 x 0x100 = 0x4000).
        memory.add_mmio(CHANNEL_BASE, 64 * CHANNEL_STRIDE,
                        read=None, write=self._channel_write,
                        ahb_slave="chnctl" if ahb else None)

        port = None
        if ahb is not None:
            for slave in ("hostif", "ftl", "chnctl"):
                ahb.attach_slave(AhbSlaveConfig(name=slave, wait_states=1,
                                                supports_split=False))
            port = ahb.attach_master(name)
        self.core = CpuCore(sim, "core", assemble(DISPATCH_FIRMWARE), memory,
                            clock=self.clock, ahb_port=port, parent=self)
        self.core.start()

    # ------------------------------------------------------------------
    # Service API (shared with AbstractCpu)
    # ------------------------------------------------------------------
    def process_command(self, opcode: int, lba: int, sectors: int,
                        placement: Dict[str, int]):
        """Generator: completes when the firmware kicks the descriptor."""
        done = self.sim.event(f"{self.name}.cmd")
        self._inbox.append({
            "opcode": opcode, "lba": lba, "sectors": sectors,
            "placement": placement, "done": done,
        })
        self.core.post_interrupt()
        descriptor = yield done
        self.stats.counter("commands").increment()
        return descriptor

    # ------------------------------------------------------------------
    # MMIO backings
    # ------------------------------------------------------------------
    def _hostif_read(self, address: int) -> int:
        offset = address - HOSTIF_BASE
        if offset == 0x0:
            if self._active is None and self._inbox:
                self._active = self._inbox.popleft()
            return 0 if self._active is None else 1
        if self._active is None:
            return 0
        if offset == 0x4:
            return self._active["opcode"]
        if offset == 0x8:
            return self._active["lba"]
        if offset == 0xC:
            return self._active["sectors"]
        return 0

    def _hostif_write(self, address: int, value: int) -> None:
        offset = address - HOSTIF_BASE
        if offset == 0x10 and self._active is not None:
            # Acknowledge: the command was fully dispatched.
            self._active = None

    def _ftl_read(self, address: int) -> int:
        offset = address - FTL_BASE
        if self._active is None:
            return 0
        placement = self._active["placement"]
        if offset == 0x4:
            return placement.get("channel", 0)
        if offset == 0x8:
            return (placement.get("way", 0) << 8) | placement.get("die", 0)
        return 0

    def _ftl_write(self, address: int, value: int) -> None:
        # Lookup submission; result registers are combinational here.
        return None

    def _channel_write(self, address: int, value: int) -> None:
        offset = address - CHANNEL_BASE
        channel = offset // CHANNEL_STRIDE
        register = offset % CHANNEL_STRIDE
        if register == 0x0:
            self._descriptor = {"channel": channel, "opcode": value}
        elif register == 0x4:
            self._descriptor["lba"] = value
        elif register == 0x8:
            self._descriptor["way"] = value >> 8
            self._descriptor["die"] = value & 0xFF
        elif register == 0xC:
            self._descriptor["sectors"] = value
        elif register == 0x10:
            # Kick: descriptor complete — release the waiting command.
            if self._active is not None:
                self._active["done"].succeed(dict(self._descriptor))

    @property
    def cycles_retired(self) -> int:
        return self.core.cycles_retired


class AbstractCpu(Component):
    """Parametric CPU service model (multi-core capable).

    ``cycles_per_command`` defaults to the cost measured by running the
    real :class:`FirmwareCpu` dispatch loop (see
    :func:`calibrate_command_cycles`); keeping the default in sync is
    enforced by a regression test.
    """

    #: Dispatch cost measured from DISPATCH_FIRMWARE: 38 cycles of pure
    #: core work (see :func:`calibrate_command_cycles`) plus the AHB MMIO
    #: traffic of a full dispatch, ~77 cycles total on an uncontended bus.
    CALIBRATED_CYCLES = 77

    def __init__(self, sim: Simulator, name: str = "cpu",
                 cycles_per_command: Optional[int] = None, n_cores: int = 1,
                 clock: Optional[Clock] = None,
                 parent: Optional[Component] = None):
        super().__init__(sim, name, parent)
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        if cycles_per_command is not None and cycles_per_command < 0:
            raise ValueError("cycles_per_command must be >= 0 or None")
        self.clock = clock or Clock("cpu", frequency_hz=200e6)
        # None means "use the calibrated default"; an explicit 0 is a
        # legitimate zero-cost CPU (the fast-fidelity floor), so the
        # sentinel must be None, not falsiness.
        self.cycles_per_command = (self.CALIBRATED_CYCLES
                                   if cycles_per_command is None
                                   else cycles_per_command)
        self.n_cores = n_cores
        self._cores = Resource(sim, f"{name}.cores", capacity=n_cores)
        self.cycles_retired = 0

    def process_command(self, opcode: int, lba: int, sectors: int,
                        placement: Dict[str, int]):
        """Generator: occupy a core for the per-command firmware cost."""
        if self.cycles_per_command:
            grant = self._cores.acquire()
            yield grant
            yield self.sim.timeout(
                self.clock.cycles(self.cycles_per_command))
            self._cores.release(grant)
            self.cycles_retired += self.cycles_per_command
        self.stats.counter("commands").increment()
        return {
            "channel": placement.get("channel", 0),
            "way": placement.get("way", 0),
            "die": placement.get("die", 0),
            "opcode": opcode, "lba": lba, "sectors": sectors,
        }

    def utilization(self) -> float:
        return self._cores.utilization()


def calibrate_command_cycles(n_commands: int = 32) -> float:
    """Measure the real firmware's per-command cycle cost (no AHB).

    Used to back-annotate :attr:`AbstractCpu.CALIBRATED_CYCLES`.
    """
    sim = Simulator()
    cpu = FirmwareCpu(sim, "cal")

    def feeder():
        for index in range(n_commands):
            yield sim.process(cpu.process_command(
                1, index * 8, 8, {"channel": index % 4, "way": 0, "die": 0}))

    sim.run(until=sim.process(feeder()))
    # Subtract nothing: steady-state cost per command including loop
    # overhead is what the abstract model should charge.
    return cpu.cycles_retired / n_commands
