"""Memory system of the controller core: local SRAM plus an MMIO map.

The paper's CPU owns a 16 MB SRAM; device registers (host interface
doorbells, channel controller descriptor ports, FTL accelerator) are
memory-mapped and reached through the AHB.  MMIO handlers are plain Python
callables so platform components can expose registers without subclassing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

ReadHandler = Callable[[int], int]
WriteHandler = Callable[[int, int], None]


class MemoryFault(Exception):
    """Access outside SRAM and every MMIO region."""


class MmioRegion(NamedTuple):
    """A device register window."""

    base: int
    size: int
    read: Optional[ReadHandler]
    write: Optional[WriteHandler]
    #: AHB slave carrying this region (None = core-local register file).
    ahb_slave: Optional[str]

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size


class MemoryMap:
    """SRAM + MMIO regions, word (32-bit) addressable."""

    def __init__(self, sram_base: int = 0, sram_bytes: int = 16 << 20,
                 sram_wait_cycles: int = 0):
        if sram_bytes < 4 or sram_bytes % 4:
            raise ValueError("sram_bytes must be a positive multiple of 4")
        if sram_wait_cycles < 0:
            raise ValueError("sram_wait_cycles must be >= 0")
        self.sram_base = sram_base
        self.sram_bytes = sram_bytes
        self.sram_wait_cycles = sram_wait_cycles
        self._sram: Dict[int, int] = {}
        self._regions: List[MmioRegion] = []

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_mmio(self, base: int, size: int,
                 read: Optional[ReadHandler] = None,
                 write: Optional[WriteHandler] = None,
                 ahb_slave: Optional[str] = None) -> MmioRegion:
        """Register a device window; overlaps are rejected."""
        if size < 4 or size % 4:
            raise ValueError("MMIO size must be a positive multiple of 4")
        new_region = MmioRegion(base, size, read, write, ahb_slave)
        for region in self._regions:
            if (base < region.base + region.size
                    and region.base < base + size):
                raise ValueError(
                    f"MMIO region {base:#x}+{size:#x} overlaps "
                    f"{region.base:#x}+{region.size:#x}")
        if (base < self.sram_base + self.sram_bytes
                and self.sram_base < base + size):
            raise ValueError("MMIO region overlaps SRAM")
        self._regions.append(new_region)
        return new_region

    def find_region(self, address: int) -> Optional[MmioRegion]:
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def in_sram(self, address: int) -> bool:
        return self.sram_base <= address < self.sram_base + self.sram_bytes

    # ------------------------------------------------------------------
    # SRAM access (word aligned; sub-word handled by the core)
    # ------------------------------------------------------------------
    def sram_load(self, address: int) -> int:
        self._check_sram(address)
        return self._sram.get(address & ~3, 0)

    def sram_store(self, address: int, value: int) -> None:
        self._check_sram(address)
        self._sram[address & ~3] = value & 0xFFFFFFFF

    def _check_sram(self, address: int) -> None:
        if not self.in_sram(address):
            raise MemoryFault(f"address {address:#x} outside SRAM")
