"""The controller core: a cycle-accurate FW-RISC interpreter.

Executes assembled firmware with ARM7TDMI-flavored cycle costs.  To keep
kernel event counts low, straight-line execution accumulates cycles in a
local counter and converts them into a single timed wait whenever the core
touches the outside world (MMIO, WFI) or the accounting quantum expires —
the timing is identical to stepping every instruction, event for event,
because nothing can observe the core between those points.

MMIO loads/stores travel over the AHB when the region names a slave,
paying real arbitration and transfer time; core-local regions cost only
the instruction's base cycles.
"""

from __future__ import annotations

from typing import List, Optional

from ..kernel import Component, Event, Simulator
from ..kernel.simtime import Clock
from ..interconnect import AhbMasterPort
from .isa import (CYCLE_COSTS, Instruction, MASK32, NUM_REGISTERS, Opcode,
                  TAKEN_BRANCH_PENALTY, alu_evaluate)
from .memory import MemoryFault, MemoryMap


class CpuFault(Exception):
    """Firmware did something illegal (bad pc, memory fault, ...)."""


class CpuCore(Component):
    """One FW-RISC core executing a fixed program image."""

    def __init__(self, sim: Simulator, name: str, program: List[Instruction],
                 memory: MemoryMap, clock: Optional[Clock] = None,
                 ahb_port: Optional[AhbMasterPort] = None,
                 parent: Optional[Component] = None,
                 quantum_cycles: int = 4096):
        super().__init__(sim, name, parent)
        if not program:
            raise ValueError("program must contain at least one instruction")
        if quantum_cycles < 1:
            raise ValueError("quantum_cycles must be >= 1")
        self.program = program
        self.memory = memory
        self.clock = clock or Clock("cpu", frequency_hz=200e6)
        self.ahb_port = ahb_port
        self.quantum_cycles = quantum_cycles
        self.registers = [0] * NUM_REGISTERS
        self.pc = 0
        self.halted = False
        self._pending_interrupt = False
        self._wakeup: Optional[Event] = None
        self.cycles_retired = 0
        self.instructions_retired = 0

    # ------------------------------------------------------------------
    # External control
    # ------------------------------------------------------------------
    def post_interrupt(self) -> None:
        """Ring the doorbell; wakes a core blocked in WFI."""
        self._pending_interrupt = True
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def start(self):
        """Begin execution; returns the completion Process."""
        return self.sim.process(self._run(), name=f"{self.name}.exec")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _operand_value(self, operand) -> int:
        return self.registers[operand.value] if operand.is_register \
            else operand.value

    def _run(self):
        accumulated = 0
        period = self.clock.period_ps
        program = self.program
        registers = self.registers

        while not self.halted:
            if not 0 <= self.pc < len(program):
                raise CpuFault(f"{self.path()}: pc {self.pc} out of program")
            instruction = program[self.pc]
            opcode = instruction.opcode
            cost = CYCLE_COSTS[opcode]
            next_pc = self.pc + 1

            if opcode is Opcode.MOV:
                registers[instruction.rd] = self._operand_value(
                    instruction.operands[0])
            elif opcode in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                            Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.MUL,
                            Opcode.DIV):
                lhs = self._operand_value(instruction.operands[0])
                rhs = self._operand_value(instruction.operands[1])
                try:
                    registers[instruction.rd] = alu_evaluate(opcode, lhs, rhs)
                except ZeroDivisionError as exc:
                    raise CpuFault(f"{self.path()}: {exc} at pc {self.pc}")
            elif opcode is Opcode.LDR:
                base = registers[instruction.operands[0].value]
                address = (base + instruction.operands[1].value) & MASK32
                accumulated, value = yield from self._load(address,
                                                           accumulated + cost)
                registers[instruction.rd] = value
                cost = 0
            elif opcode is Opcode.STR:
                base = registers[instruction.rd]
                address = (base + instruction.operands[1].value) & MASK32
                value = registers[instruction.operands[0].value]
                accumulated = yield from self._store(address, value,
                                                     accumulated + cost)
                cost = 0
            elif opcode is Opcode.B:
                next_pc = instruction.target
            elif opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
                lhs = self._operand_value(instruction.operands[0])
                rhs = self._operand_value(instruction.operands[1])
                taken = ((opcode is Opcode.BEQ and lhs == rhs)
                         or (opcode is Opcode.BNE and lhs != rhs)
                         or (opcode is Opcode.BLT and lhs < rhs)
                         or (opcode is Opcode.BGE and lhs >= rhs))
                if taken:
                    next_pc = instruction.target
                    cost += TAKEN_BRANCH_PENALTY
            elif opcode is Opcode.BL:
                registers[14] = next_pc
                next_pc = instruction.target
            elif opcode is Opcode.RET:
                next_pc = registers[14]
            elif opcode is Opcode.WFI:
                accumulated += cost
                cost = 0
                # Flush time before sleeping; WFI consumes no cycles while
                # asleep.  Re-check the doorbell *after* the flush so an
                # interrupt arriving during it is not lost.
                if accumulated:
                    yield self.sim.timeout(accumulated * period)
                    self.cycles_retired += accumulated
                    accumulated = 0
                if not self._pending_interrupt:
                    self._wakeup = self.sim.event(f"{self.name}.wfi")
                    yield self._wakeup
                    self._wakeup = None
                self._pending_interrupt = False
            elif opcode is Opcode.HALT:
                self.halted = True
            elif opcode is Opcode.NOP:
                pass
            else:  # pragma: no cover - exhaustive over Opcode
                raise CpuFault(f"unimplemented opcode {opcode}")

            accumulated += cost
            self.instructions_retired += 1
            self.pc = next_pc

            if accumulated >= self.quantum_cycles:
                yield self.sim.timeout(accumulated * period)
                self.cycles_retired += accumulated
                accumulated = 0

        if accumulated:
            yield self.sim.timeout(accumulated * period)
            self.cycles_retired += accumulated
        self.stats.counter("instructions").increment(self.instructions_retired)
        return self.cycles_retired

    # ------------------------------------------------------------------
    # Memory access
    # ------------------------------------------------------------------
    def _load(self, address: int, accumulated: int):
        memory = self.memory
        if memory.in_sram(address):
            accumulated += memory.sram_wait_cycles
            return accumulated, memory.sram_load(address)
        region = memory.find_region(address)
        if region is None or region.read is None:
            raise CpuFault(f"{self.path()}: load fault at {address:#x}")
        accumulated = yield from self._flush_and_bus(address, accumulated,
                                                     region)
        return accumulated, region.read(address) & MASK32

    def _store(self, address: int, value: int, accumulated: int):
        memory = self.memory
        if memory.in_sram(address):
            memory.sram_store(address, value)
            return accumulated + memory.sram_wait_cycles
        region = memory.find_region(address)
        if region is None or region.write is None:
            raise CpuFault(f"{self.path()}: store fault at {address:#x}")
        accumulated = yield from self._flush_and_bus(address, accumulated,
                                                     region)
        region.write(address, value & MASK32)
        return accumulated

    def _flush_and_bus(self, address: int, accumulated: int, region):
        # Make accumulated time real before interacting with shared state.
        if accumulated:
            yield self.sim.timeout(accumulated * self.clock.period_ps)
            self.cycles_retired += accumulated
        if region.ahb_slave is not None:
            if self.ahb_port is None:
                raise CpuFault(
                    f"{self.path()}: region at {address:#x} needs the AHB "
                    "but the core has no bus port")
            yield self.sim.process(
                self.ahb_port.write(region.ahb_slave, 4))
        return 0
