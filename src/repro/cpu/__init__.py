"""Embedded controller CPU subsystem.

FW-RISC instruction set + assembler, a cycle-accurate core with SRAM and
memory-mapped I/O over the AHB, the descriptor-driven DMA engine, and the
SSD dispatch firmware with its abstract (parametric) counterpart.
"""

from .assembler import AssemblyError, assemble
from .core import CpuCore, CpuFault
from .dma import DmaEngine
from .firmware import (AbstractCpu, DISPATCH_FIRMWARE, FirmwareCpu,
                       calibrate_command_cycles)
from .isa import (CYCLE_COSTS, Instruction, NUM_REGISTERS, Opcode, Operand,
                  TAKEN_BRANCH_PENALTY, alu_evaluate)
from .memory import MemoryFault, MemoryMap, MmioRegion

__all__ = [
    "AbstractCpu", "AssemblyError", "CYCLE_COSTS", "CpuCore", "CpuFault",
    "DISPATCH_FIRMWARE", "DmaEngine", "FirmwareCpu", "Instruction",
    "MemoryFault", "MemoryMap", "MmioRegion", "NUM_REGISTERS", "Opcode",
    "Operand", "TAKEN_BRANCH_PENALTY", "alu_evaluate", "assemble",
    "calibrate_command_cycles",
]
