"""Generic DMA engine.

Both the host interface's "external DMA controller" and the channel
controller's push-pull DMA (PP-DMA) are descriptor-driven engines with a
small per-descriptor setup cost and a limited number of concurrent
channels.  The actual data movement is supplied by the caller as a
generator (e.g. a DRAM access or an ONFI transfer), so the engine composes
with any data path.
"""

from __future__ import annotations

from typing import Optional

from ..kernel import Component, Resource, Simulator
from ..kernel.simtime import ns
from ..obs import spans as _obs


class DmaEngine(Component):
    """Descriptor-driven DMA with ``channels`` concurrent contexts."""

    def __init__(self, sim: Simulator, name: str, channels: int = 1,
                 setup_ps: int = ns(100),
                 parent: Optional[Component] = None):
        super().__init__(sim, name, parent)
        if channels < 1:
            raise ValueError(f"channels must be >= 1, got {channels}")
        if setup_ps < 0:
            raise ValueError("setup_ps must be >= 0")
        self.setup_ps = setup_ps
        self._contexts = Resource(sim, f"{name}.ctx", capacity=channels)

    def execute(self, mover, nbytes: int = 0):
        """Generator: run one descriptor.

        ``mover`` is a generator performing the actual transfer; the engine
        charges its setup latency first, then runs the mover while holding
        a DMA context.  Returns whatever the mover returns.
        """
        grant = self._contexts.acquire()
        yield grant
        t0 = self.sim.now if _obs.enabled else -1
        try:
            if self.setup_ps:
                yield self.sim.timeout(self.setup_ps)
            result = yield self.sim.process(mover)
        finally:
            self._contexts.release(grant)
        if t0 >= 0:
            _obs.record_span(self.path(), "dma", t0, self.sim.now)
        self.stats.counter("descriptors").increment()
        if nbytes:
            self.stats.meter("data").record(nbytes)
        return result

    def utilization(self) -> float:
        return self._contexts.utilization()
