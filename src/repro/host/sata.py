"""SATA protocol model at FIS granularity.

"All SATA protocol layers and operation timings have been accurately
validated following the SATA protocol timing directives" (paper,
Section III-C1).  This module models the link/transport layers explicitly:
every command is a sequence of **Frames Information Structures** (FIS)
exchanged over the 8b/10b-coded serial link, plus fixed link-layer
primitives (HOLD/HOLDA handshakes, X_RDY/R_RDY arbitration, SYNC escapes).

The NCQ write sequence modeled (per Serial ATA rev 2.6):

    H2D Register FIS (command)      20 B   host -> device
    D2H Register FIS (release)      20 B   device -> host
    DMA Setup FIS                   28 B   device -> host
    n x Data FIS                    4 + up to 8192 B each
    Set Device Bits FIS             8 B    device -> host (completion)

and the NCQ read sequence differs only in data direction.  The function
:func:`ncq_command_overhead_ps` aggregates everything except the raw
payload serialization — exactly the quantity
:class:`~repro.host.interface.HostInterfaceSpec` abstracts as
``command_overhead_ps``, so the abstraction is *derived* here rather than
guessed (and a regression test keeps the two consistent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: 8b/10b line coding efficiency.
CODING_EFFICIENCY = 0.8

#: FIS sizes in bytes (SATA rev 2.6, incl. 4 B CRC).
FIS_REGISTER_H2D = 20 + 4
FIS_REGISTER_D2H = 20 + 4
FIS_DMA_SETUP = 28 + 4
FIS_SET_DEVICE_BITS = 8 + 4
FIS_DATA_HEADER = 4 + 4
#: Maximum payload of one Data FIS.
DATA_FIS_MAX_PAYLOAD = 8192

#: Link-layer primitives around each frame: X_RDY/R_RDY arbitration,
#: SOF/EOF, WTRM/R_OK handshake — approximated as a byte cost per frame.
PRIMITIVES_PER_FIS = 8 * 4  # eight 4-byte primitives

#: Device firmware/PHY turnaround between protocol phases.
PHASE_TURNAROUND_PS = 80_000  # 80 ns


@dataclass(frozen=True)
class SataLink:
    """One SATA generation's physical link."""

    #: Line rate in gigabits per second (3.0 for SATA II).
    line_rate_gbps: float = 3.0

    def __post_init__(self) -> None:
        if self.line_rate_gbps <= 0:
            raise ValueError("line_rate_gbps must be positive")

    @property
    def payload_bytes_per_second(self) -> float:
        """Effective payload rate after 8b/10b coding."""
        return self.line_rate_gbps * 1e9 / 8 * CODING_EFFICIENCY

    def serialize_ps(self, nbytes: int) -> int:
        """Time to push ``nbytes`` through the link."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return int(round(nbytes / self.payload_bytes_per_second * 1e12))

    def fis_time_ps(self, fis_bytes: int) -> int:
        """One FIS including its framing primitives."""
        return self.serialize_ps(fis_bytes + PRIMITIVES_PER_FIS)


def data_fis_count(nbytes: int) -> int:
    """Data FISes needed for a payload."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    return max(1, -(-nbytes // DATA_FIS_MAX_PAYLOAD)) if nbytes else 0


def ncq_write_sequence(nbytes: int,
                       link: SataLink = SataLink()) -> List[Tuple[str, int]]:
    """The FIS-by-FIS timeline of one NCQ write; (name, duration_ps)."""
    sequence = [
        ("H2D Register FIS", link.fis_time_ps(FIS_REGISTER_H2D)),
        ("turnaround", PHASE_TURNAROUND_PS),
        ("D2H Register FIS (release)", link.fis_time_ps(FIS_REGISTER_D2H)),
        ("turnaround", PHASE_TURNAROUND_PS),
        ("DMA Setup FIS", link.fis_time_ps(FIS_DMA_SETUP)),
        ("turnaround", PHASE_TURNAROUND_PS),
    ]
    for index in range(data_fis_count(nbytes)):
        chunk = min(DATA_FIS_MAX_PAYLOAD,
                    nbytes - index * DATA_FIS_MAX_PAYLOAD)
        sequence.append((f"Data FIS #{index}",
                         link.fis_time_ps(FIS_DATA_HEADER) +
                         link.serialize_ps(chunk)))
    sequence += [
        ("turnaround", PHASE_TURNAROUND_PS),
        ("Set Device Bits FIS", link.fis_time_ps(FIS_SET_DEVICE_BITS)),
    ]
    return sequence


def ncq_read_sequence(nbytes: int,
                      link: SataLink = SataLink()) -> List[Tuple[str, int]]:
    """The FIS timeline of one NCQ read (data direction reversed)."""
    return ncq_write_sequence(nbytes, link)


def ncq_command_total_ps(nbytes: int, link: SataLink = SataLink()) -> int:
    """End-to-end link time of one NCQ command."""
    return sum(duration for __, duration in ncq_write_sequence(nbytes, link))


def ncq_command_overhead_ps(link: SataLink = SataLink()) -> int:
    """Protocol time excluding raw payload serialization.

    This is what the cycle-accurate interface model folds into
    ``command_overhead_ps``; the regression suite checks the folded value
    against this derivation.
    """
    total = ncq_command_total_ps(DATA_FIS_MAX_PAYLOAD, link)
    payload_only = link.serialize_ps(DATA_FIS_MAX_PAYLOAD)
    return total - payload_only


def effective_bandwidth_bps(link: SataLink = SataLink(),
                            block_bytes: int = 4096) -> float:
    """Sustained payload rate for a stream of ``block_bytes`` commands."""
    per_command = ncq_command_total_ps(block_bytes, link)
    return block_bytes / (per_command / 1e12)
