"""Host-side subsystem: interfaces (SATA II / PCIe+NVMe), commands,
trace player and IOZone-like workload generators."""

from . import nvme, sata
from .commands import IoCommand, IoOpcode, IoStatus, SECTOR_BYTES
from .interface import (HostInterface, HostInterfaceSpec, pcie_nvme_spec,
                        sata2_spec, sata_spec)
from .trace import (TraceError, format_trace, load_trace, parse_trace,
                    play_trace, save_trace)
from .workload import (AccessPattern, CommandListWorkload, IOZONE_SUITE,
                       Workload, mixed_workload, random_read, random_write,
                       sequential_read, sequential_write, timed_workload)

__all__ = [
    "AccessPattern", "CommandListWorkload", "HostInterface",
    "HostInterfaceSpec", "IOZONE_SUITE",
    "IoCommand", "IoOpcode", "IoStatus", "SECTOR_BYTES", "TraceError",
    "Workload",
    "format_trace", "load_trace", "parse_trace", "pcie_nvme_spec", "play_trace",
    "mixed_workload", "random_read", "random_write", "sata2_spec",
    "sata_spec", "save_trace", "timed_workload",
    "nvme", "sata", "sequential_read", "sequential_write",
]
