"""Host-side subsystem: interfaces (SATA II / PCIe+NVMe), commands,
trace player, real-trace ingestion and IOZone-like workload generators."""

from . import nvme, sata, traces
from .commands import IoCommand, IoOpcode, IoStatus, SECTOR_BYTES
from .interface import (HostInterface, HostInterfaceSpec, pcie_nvme_spec,
                        sata2_spec, sata_spec)
from .tenants import (ARBITRATION_POLICIES, NamespacePartition, QueueArbiter,
                      TENANT_WORKLOADS, Tenant, TenantSpec, build_tenants,
                      kv_store_workload, merge_tenants, page_io_workload,
                      partition_namespaces, tenant_commands)
from .trace import (TraceError, format_trace, load_trace, parse_trace,
                    play_trace, save_trace)
from .traces import (TraceProfile, TraceRecord, characterize,
                     detect_format, detect_format_of_file, format_profile,
                     iter_trace, preconditioning_commands,
                     records_to_commands, run_preconditioning, scale_time,
                     wrap_to_capacity, wrap_to_device)
from .workload import (AccessPattern, CommandListWorkload, IOZONE_SUITE,
                       Workload, mixed_workload, random_read, random_write,
                       sequential_read, sequential_write, timed_workload)

__all__ = [
    "ARBITRATION_POLICIES", "AccessPattern", "CommandListWorkload",
    "HostInterface",
    "HostInterfaceSpec", "IOZONE_SUITE", "NamespacePartition",
    "QueueArbiter", "TENANT_WORKLOADS", "Tenant", "TenantSpec",
    "build_tenants", "kv_store_workload", "merge_tenants",
    "page_io_workload", "partition_namespaces", "tenant_commands",
    "IoCommand", "IoOpcode", "IoStatus", "SECTOR_BYTES", "TraceError",
    "TraceProfile", "TraceRecord", "Workload",
    "characterize", "detect_format", "detect_format_of_file",
    "format_profile", "format_trace", "iter_trace", "load_trace",
    "parse_trace", "pcie_nvme_spec", "play_trace",
    "preconditioning_commands",
    "mixed_workload", "random_read", "random_write",
    "records_to_commands", "run_preconditioning", "sata2_spec",
    "sata_spec", "save_trace", "scale_time", "timed_workload", "traces",
    "nvme", "sata", "sequential_read", "sequential_write",
    "wrap_to_capacity", "wrap_to_device",
]
