"""NVMe queue-pair protocol model over PCI Express.

"Fast operations are achieved through the NVMe protocol that
significantly reduces packetization latencies with respect to standard
SATA interfaces" (paper, Section III-C1).  This module models the
mechanism: submission/completion queue rings in host memory, doorbell
writes, SQE fetch, data TLPs and the CQE + MSI-X completion path, all
expressed as PCIe transaction-layer packets.

The aggregate per-command cost derived here is what
:func:`~repro.host.interface.pcie_nvme_spec` folds into its
``command_overhead_ps``; a regression test keeps the two consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: TLP header + framing bytes per PCIe packet (3-DW header + seq + LCRC).
TLP_OVERHEAD_BYTES = 20
#: Maximum payload size (bytes) per data TLP — the common 256 B setting.
MAX_PAYLOAD_SIZE = 256

#: NVMe structure sizes.
SQE_BYTES = 64
CQE_BYTES = 16
DOORBELL_BYTES = 4
MSIX_BYTES = 16

#: Controller-side processing between protocol phases (command decode,
#: queue arbitration) — tens of nanoseconds in ASIC implementations.
CONTROLLER_LATENCY_PS = 60_000  # 60 ns

#: Per-lane payload rates after line coding (bytes per second).
LANE_RATE_BPS = {
    1: 250e6 * 0.8 / 0.8,   # gen1: 2.5 GT/s, 8b/10b -> 250 MB/s raw
    2: 500e6,               # gen2: 5.0 GT/s, 8b/10b -> 500 MB/s raw
    3: 985e6,               # gen3: 8.0 GT/s, 128b/130b -> ~985 MB/s raw
}


@dataclass(frozen=True)
class PcieLink:
    """A PCIe link: generation and lane count."""

    generation: int = 2
    lanes: int = 8

    def __post_init__(self) -> None:
        if self.generation not in LANE_RATE_BPS:
            raise ValueError(f"unsupported generation {self.generation}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid lane count {self.lanes}")

    @property
    def raw_bytes_per_second(self) -> float:
        return LANE_RATE_BPS[self.generation] * self.lanes

    def tlp_time_ps(self, payload_bytes: int) -> int:
        """Serialize one TLP carrying ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        wire = payload_bytes + TLP_OVERHEAD_BYTES
        return int(round(wire / self.raw_bytes_per_second * 1e12))

    def data_time_ps(self, nbytes: int) -> int:
        """Move ``nbytes`` of payload as a train of max-size TLPs."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        full, rest = divmod(nbytes, MAX_PAYLOAD_SIZE)
        total = full * self.tlp_time_ps(MAX_PAYLOAD_SIZE)
        if rest:
            total += self.tlp_time_ps(rest)
        return total

    def efficiency(self) -> float:
        """Payload fraction of the wire for max-size data TLPs."""
        return MAX_PAYLOAD_SIZE / (MAX_PAYLOAD_SIZE + TLP_OVERHEAD_BYTES)


def nvme_write_sequence(nbytes: int,
                        link: PcieLink = PcieLink()) -> List[Tuple[str, int]]:
    """The packet-by-packet timeline of one NVMe write command."""
    return [
        ("SQ doorbell (MMIO write)", link.tlp_time_ps(DOORBELL_BYTES)),
        ("controller decode", CONTROLLER_LATENCY_PS),
        ("SQE fetch (64 B read)", 2 * link.tlp_time_ps(SQE_BYTES // 2)),
        ("controller decode", CONTROLLER_LATENCY_PS),
        ("data TLPs", link.data_time_ps(nbytes)),
        ("controller decode", CONTROLLER_LATENCY_PS),
        ("CQE write-back", link.tlp_time_ps(CQE_BYTES)),
        ("MSI-X interrupt", link.tlp_time_ps(MSIX_BYTES)),
        ("CQ doorbell", link.tlp_time_ps(DOORBELL_BYTES)),
    ]


def nvme_command_total_ps(nbytes: int, link: PcieLink = PcieLink()) -> int:
    """End-to-end link time of one NVMe command."""
    return sum(duration for __, duration in nvme_write_sequence(nbytes,
                                                                link))


def nvme_command_overhead_ps(link: PcieLink = PcieLink()) -> int:
    """Protocol time excluding raw payload movement."""
    total = nvme_command_total_ps(4096, link)
    payload_only = link.data_time_ps(4096)
    return total - payload_only


class QueuePair:
    """One NVMe submission/completion queue pair (ring book-keeping).

    Pure state machine (no timing): the timed link work lives above.
    Used by tests and by multi-queue arbitration studies.
    """

    def __init__(self, depth: int = 1024, qid: int = 0):
        if not 2 <= depth <= 65536:
            raise ValueError("queue depth must be in 2..65536")
        self.depth = depth
        self.qid = qid
        self._sq_head = 0
        self._sq_tail = 0
        self._cq_count = 0
        self.submitted = 0
        self.completed = 0

    @property
    def outstanding(self) -> int:
        return self.submitted - self.completed

    @property
    def sq_full(self) -> bool:
        # One slot is sacrificed to distinguish full from empty.
        return (self._sq_tail + 1) % self.depth == self._sq_head

    def submit(self) -> int:
        """Host writes an SQE and rings the doorbell; returns the slot."""
        if self.sq_full:
            raise RuntimeError(f"SQ {self.qid} full at depth {self.depth}")
        slot = self._sq_tail
        self._sq_tail = (self._sq_tail + 1) % self.depth
        self.submitted += 1
        return slot

    def fetch(self) -> int:
        """Controller consumes the oldest SQE."""
        if self._sq_head == self._sq_tail:
            raise RuntimeError(f"SQ {self.qid} empty")
        slot = self._sq_head
        self._sq_head = (self._sq_head + 1) % self.depth
        return slot

    def complete(self) -> None:
        """Controller posts a CQE."""
        if self.completed >= self.submitted:
            raise RuntimeError(f"CQ {self.qid}: nothing to complete")
        self.completed += 1


def round_robin_arbitrate(queues: List[QueuePair],
                          budget: int) -> List[int]:
    """NVMe's default RR controller arbitration: pick up to ``budget``
    SQEs, one per non-empty queue per round; returns the qids served."""
    if budget < 0:
        raise ValueError("budget must be >= 0")
    served: List[int] = []
    while len(served) < budget:
        progress = False
        for queue in queues:
            if len(served) >= budget:
                break
            if queue._sq_head != queue._sq_tail:
                queue.fetch()
                served.append(queue.qid)
                progress = True
        if not progress:
            break
    return served


def weighted_round_robin_arbitrate(queues: List[QueuePair],
                                   weights: List[int],
                                   budget: Optional[int] = None
                                   ) -> List[int]:
    """One round of NVMe weighted-round-robin arbitration.

    Queue ``i`` is granted a burst of up to ``weights[i]`` SQEs per round
    (the NVMe "arbitration burst" per priority queue); a queue that runs
    dry mid-burst simply forfeits the remainder — credits never carry
    over between rounds.  Returns the qids served, in service order; the
    caller loops rounds until nothing is served.
    """
    if len(weights) != len(queues):
        raise ValueError(f"{len(queues)} queues but {len(weights)} weights")
    if any(weight < 1 for weight in weights):
        raise ValueError("arbitration weights must be >= 1")
    if budget is not None and budget < 0:
        raise ValueError("budget must be >= 0")
    served: List[int] = []
    for queue, weight in zip(queues, weights):
        for __ in range(weight):
            if budget is not None and len(served) >= budget:
                return served
            if queue._sq_head == queue._sq_tail:
                break
            queue.fetch()
            served.append(queue.qid)
    return served
