"""Command trace player.

"Both interfaces include a command/data trace player which parses a file
containing the operations to be performed.  During simulation the Host
Interface model parses the trace file and triggers operations for the
following components accordingly." (paper, Section III-C1)

The native trace format — one command per line::

    <issue_time_us> <R|W|T|F> <lba> <sectors>

``#`` starts a comment.  ``issue_time_us`` is the earliest issue time; a
value of 0 for every line reproduces a closed-loop (queue-limited) stream
like the Fig. 3/4 experiments use.

Real block traces (MSR-Cambridge CSV, blkparse text) are handled by the
streaming ingestion pipeline in :mod:`repro.host.traces`; the helpers
here keep the original convenience API (parse whole text, command lists)
on top of it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, TYPE_CHECKING

from ..kernel.tracing import trace as kernel_trace, trace_enabled
from .commands import IoCommand, IoOpcode
from .traces.formats import emit_records, iter_trace, parse_trace_lines
from .traces.records import TraceError, TraceRecord, records_to_commands

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Simulator
    from ..ssd.device import SsdDevice
    from ..ssd.metrics import RunResult

__all__ = ["TraceError", "format_trace", "load_trace", "parse_trace",
           "play_trace", "save_trace"]


def parse_trace(text: str) -> List[IoCommand]:
    """Parse native trace text into a command list (ordered by line)."""
    records = parse_trace_lines(text.splitlines(), "native",
                                source="<string>")
    return list(records_to_commands(records))


def load_trace(path: str, fmt: str = "auto") -> List[IoCommand]:
    """Read and parse a trace file (native, MSR CSV or blkparse)."""
    return list(records_to_commands(iter_trace(path, fmt=fmt)))


def format_trace(commands: Iterable[IoCommand]) -> str:
    """Render commands back into native trace text (inverse of
    :func:`parse_trace`)."""
    records = (TraceRecord(issue_ps=max(0, command.issue_time_ps),
                           opcode=command.opcode, lba=command.lba,
                           sectors=command.sectors)
               for command in commands)
    return "\n".join(emit_records(records, "native")) + "\n"


def save_trace(path: str, commands: Iterable[IoCommand]) -> None:
    """Write commands to a native-format trace file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_trace(commands))


def play_trace(sim: "Simulator", device: "SsdDevice",
               commands: List[IoCommand], pattern: str = "sequential",
               label: str = "host.trace",
               max_commands: Optional[int] = None) -> "RunResult":
    """Replay a parsed command trace through ``device`` — the paper's
    host-side trace player.  Each command is held until its
    ``issue_time_ps`` before entering the interface queue (open loop).

    When kernel tracing is enabled an ``issue`` record is emitted per
    command; the ``trace_enabled()`` guard keeps the per-command detail
    formatting entirely off the disabled path.
    """
    from ..ssd.metrics import run_workload  # deferred: breaks import cycle
    from .workload import CommandListWorkload

    if trace_enabled():
        for command in commands:
            kernel_trace(max(0, command.issue_time_ps), label, "issue",
                         str(command))
    workload = CommandListWorkload(list(commands), pattern=pattern)
    return run_workload(sim, device, workload, max_commands=max_commands,
                        label=label or workload.pattern_name,
                        honor_issue_times=True)
