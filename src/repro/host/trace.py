"""Command trace player.

"Both interfaces include a command/data trace player which parses a file
containing the operations to be performed.  During simulation the Host
Interface model parses the trace file and triggers operations for the
following components accordingly." (paper, Section III-C1)

Trace format — one command per line::

    <issue_time_us> <R|W|T|F> <lba> <sectors>

``#`` starts a comment.  ``issue_time_us`` is the earliest issue time; a
value of 0 for every line reproduces a closed-loop (queue-limited) stream
like the Fig. 3/4 experiments use.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, TYPE_CHECKING

from ..kernel.simtime import us
from ..kernel.tracing import trace as kernel_trace, trace_enabled
from .commands import IoCommand, IoOpcode

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Simulator
    from ..ssd.device import SsdDevice
    from ..ssd.metrics import RunResult

_OPCODE_LETTERS = {
    "R": IoOpcode.READ,
    "W": IoOpcode.WRITE,
    "T": IoOpcode.TRIM,
    "F": IoOpcode.FLUSH,
}
_LETTER_OF = {opcode: letter for letter, opcode in _OPCODE_LETTERS.items()}


class TraceError(ValueError):
    """Malformed trace input."""


def parse_trace(text: str) -> List[IoCommand]:
    """Parse trace text into a command list (ordered by line)."""
    commands: List[IoCommand] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 4:
            raise TraceError(
                f"line {line_number}: expected 'time op lba sectors', "
                f"got {raw!r}")
        time_text, op_text, lba_text, sectors_text = fields
        opcode = _OPCODE_LETTERS.get(op_text.upper())
        if opcode is None:
            raise TraceError(f"line {line_number}: unknown opcode "
                             f"{op_text!r}")
        try:
            issue_us = float(time_text)
            lba = int(lba_text)
            sectors = int(sectors_text)
        except ValueError as exc:
            raise TraceError(f"line {line_number}: {exc}") from None
        if issue_us < 0:
            raise TraceError(f"line {line_number}: negative issue time")
        command = IoCommand(opcode, lba, sectors, tag=len(commands))
        command.issue_time_ps = us(issue_us)
        commands.append(command)
    return commands


def load_trace(path: str) -> List[IoCommand]:
    """Read and parse a trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_trace(handle.read())


def format_trace(commands: Iterable[IoCommand]) -> str:
    """Render commands back into trace text (inverse of parse_trace)."""
    lines = ["# time_us op lba sectors"]
    for command in commands:
        issue_us = max(0, command.issue_time_ps) / 1e6 \
            if command.issue_time_ps >= 0 else 0.0
        lines.append(f"{issue_us:.3f} {_LETTER_OF[command.opcode]} "
                     f"{command.lba} {command.sectors}")
    return "\n".join(lines) + "\n"


def save_trace(path: str, commands: Iterable[IoCommand]) -> None:
    """Write commands to a trace file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_trace(commands))


def play_trace(sim: "Simulator", device: "SsdDevice",
               commands: List[IoCommand], pattern: str = "sequential",
               label: str = "host.trace",
               max_commands: Optional[int] = None) -> "RunResult":
    """Replay a parsed command trace through ``device`` — the paper's
    host-side trace player.  Each command is held until its
    ``issue_time_ps`` before entering the interface queue (open loop).

    When kernel tracing is enabled an ``issue`` record is emitted per
    command; the ``trace_enabled()`` guard keeps the per-command detail
    formatting entirely off the disabled path.
    """
    from ..ssd.metrics import run_workload  # deferred: breaks import cycle
    from .workload import CommandListWorkload

    if trace_enabled():
        for command in commands:
            kernel_trace(max(0, command.issue_time_ps), label, "issue",
                         str(command))
    workload = CommandListWorkload(list(commands), pattern=pattern)
    return run_workload(sim, device, workload, max_commands=max_commands,
                        label=label or workload.pattern_name,
                        honor_issue_times=True)
