"""IOZone-like synthetic workload generation.

The paper validates against "standard IOZone synthetic benchmarks": a
sequential and a random write/read workload with a block size of 4 KB.
:class:`Workload` generates exactly those command streams,
deterministically (xorshift PRNG), over a configurable logical span.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from .commands import IoCommand, IoOpcode, SECTOR_BYTES


class AccessPattern(enum.Enum):
    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass(frozen=True)
class Workload:
    """A synthetic command stream description.

    ``span_bytes`` is the logical region exercised (the IOZone file size);
    random workloads pick 4 KiB-aligned offsets uniformly inside it.
    """

    pattern: AccessPattern
    opcode: IoOpcode
    total_bytes: int
    block_bytes: int = 4096
    span_bytes: int = 1 << 30
    seed: int = 0xC0FFEE

    def __post_init__(self) -> None:
        if self.block_bytes < SECTOR_BYTES or self.block_bytes % SECTOR_BYTES:
            raise ValueError(
                f"block_bytes must be a positive multiple of {SECTOR_BYTES}")
        if self.total_bytes < self.block_bytes:
            raise ValueError("total_bytes must cover at least one block")
        if self.span_bytes < self.block_bytes:
            raise ValueError("span_bytes must cover at least one block")

    @property
    def n_commands(self) -> int:
        return self.total_bytes // self.block_bytes

    @property
    def pattern_name(self) -> str:
        """'sequential' or 'random' — the key the WAF model expects."""
        return self.pattern.value

    def commands(self) -> Iterator[IoCommand]:
        """Yield the command stream."""
        sectors_per_block = self.block_bytes // SECTOR_BYTES
        blocks_in_span = self.span_bytes // self.block_bytes
        state = self.seed or 1
        for tag in range(self.n_commands):
            if self.pattern is AccessPattern.SEQUENTIAL:
                block_index = tag % blocks_in_span
            else:
                state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
                state ^= state >> 7
                state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
                block_index = state % blocks_in_span
            yield IoCommand(self.opcode, block_index * sectors_per_block,
                            sectors_per_block, tag=tag)

    def to_list(self) -> List[IoCommand]:
        return list(self.commands())


def sequential_write(total_bytes: int, block_bytes: int = 4096,
                     **kwargs) -> Workload:
    """IOZone 'write' phase."""
    return Workload(AccessPattern.SEQUENTIAL, IoOpcode.WRITE, total_bytes,
                    block_bytes, **kwargs)


def sequential_read(total_bytes: int, block_bytes: int = 4096,
                    **kwargs) -> Workload:
    """IOZone 'read' phase."""
    return Workload(AccessPattern.SEQUENTIAL, IoOpcode.READ, total_bytes,
                    block_bytes, **kwargs)


def random_write(total_bytes: int, block_bytes: int = 4096,
                 **kwargs) -> Workload:
    """IOZone 'random write' phase."""
    return Workload(AccessPattern.RANDOM, IoOpcode.WRITE, total_bytes,
                    block_bytes, **kwargs)


def random_read(total_bytes: int, block_bytes: int = 4096,
                **kwargs) -> Workload:
    """IOZone 'random read' phase."""
    return Workload(AccessPattern.RANDOM, IoOpcode.READ, total_bytes,
                    block_bytes, **kwargs)


IOZONE_SUITE = {
    "SW": sequential_write,
    "SR": sequential_read,
    "RW": random_write,
    "RR": random_read,
}


def mixed_workload(total_bytes: int, read_fraction: float = 0.7,
                   block_bytes: int = 4096, span_bytes: int = 1 << 30,
                   seed: int = 0xBEEF) -> "CommandListWorkload":
    """A random read/write mix (e.g. the classic 70/30 OLTP profile).

    Deterministic: the opcode and offset streams derive from ``seed``.
    The WAF pattern is ``random`` (the write portion is scattered).
    """
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(f"read_fraction must be in [0, 1], "
                         f"got {read_fraction}")
    sectors_per_block = block_bytes // SECTOR_BYTES
    blocks_in_span = span_bytes // block_bytes
    n_commands = total_bytes // block_bytes
    if n_commands < 1:
        raise ValueError("total_bytes must cover at least one block")
    commands: List[IoCommand] = []
    state = seed or 1
    for tag in range(n_commands):
        state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 7
        state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
        opcode = (IoOpcode.READ
                  if (state & 0xFFFF) / 65536.0 < read_fraction
                  else IoOpcode.WRITE)
        block_index = (state >> 16) % blocks_in_span
        commands.append(IoCommand(opcode, block_index * sectors_per_block,
                                  sectors_per_block, tag=tag))
    return CommandListWorkload(commands, pattern="random")


def timed_workload(rate_iops: float, duration_s: float,
                   read_fraction: float = 0.5, block_bytes: int = 4096,
                   span_bytes: int = 1 << 30,
                   seed: int = 0xFEED) -> "CommandListWorkload":
    """An open-loop arrival stream: commands carry issue times at a fixed
    rate (replay with ``honor_issue_times=True``).

    This is the "complete virtual platform environment" direction the
    paper's conclusion points at — a host-side application model feeding
    the SSD, rather than a saturating closed loop.
    """
    if rate_iops <= 0 or duration_s <= 0:
        raise ValueError("rate_iops and duration_s must be positive")
    n_commands = max(1, int(rate_iops * duration_s))
    interval_ps = int(1e12 / rate_iops)
    base = mixed_workload(block_bytes * n_commands, read_fraction,
                          block_bytes, span_bytes, seed)
    commands = base.to_list()
    for index, command in enumerate(commands):
        command.issue_time_ps = index * interval_ps
    return CommandListWorkload(commands, pattern="random")


class CommandListWorkload:
    """Adapts an explicit command list (e.g. a parsed trace) to the
    workload interface the runner expects.

    ``pattern`` feeds the WAF model; pick ``"random"`` for scattered
    traces, ``"sequential"`` otherwise.
    """

    def __init__(self, commands: List[IoCommand],
                 pattern: str = "sequential"):
        if pattern not in ("sequential", "random"):
            raise ValueError(f"pattern must be sequential/random, "
                             f"got {pattern!r}")
        self._commands = list(commands)
        if not self._commands:
            raise ValueError("command list must not be empty")
        self.pattern_name = pattern
        self.opcode = self._commands[0].opcode
        self.block_bytes = self._commands[0].nbytes

    @property
    def n_commands(self) -> int:
        return len(self._commands)

    @property
    def total_bytes(self) -> int:
        return sum(command.nbytes for command in self._commands)

    def commands(self) -> Iterator[IoCommand]:
        return iter(self._commands)

    def to_list(self) -> List[IoCommand]:
        return list(self._commands)
