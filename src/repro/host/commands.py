"""I/O commands exchanged between host and SSD."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

SECTOR_BYTES = 512


class IoOpcode(enum.Enum):
    """Host command opcodes."""

    READ = 1
    WRITE = 2
    TRIM = 3
    FLUSH = 4


class IoStatus(enum.Enum):
    """Completion status reported back over the host interface.

    Real protocols return these in the completion (NVMe status field /
    SATA error FIS); a command that hits an unrecoverable media error is
    *completed with an error*, never dropped — the simulation must do the
    same instead of crashing.
    """

    OK = "ok"
    #: Read data remained uncorrectable after the full retry ladder.
    UNCORRECTABLE = "uncorrectable"
    #: Write could not be placed (remap attempts / spare pool exhausted).
    WRITE_FAILED = "write-failed"


@dataclass
class IoCommand:
    """One host I/O command.

    ``lba``/``sectors`` use 512-byte sectors, as SATA and NVMe do.
    Timestamps are filled in by the host interface as the command moves
    through the pipeline.
    """

    opcode: IoOpcode
    lba: int
    sectors: int
    tag: int = 0
    issue_time_ps: int = -1
    submit_time_ps: int = -1      # entered the device (post link transfer)
    complete_time_ps: int = -1
    status: IoStatus = IoStatus.OK
    #: Observability context: a :class:`repro.obs.spans.CommandSpan`
    #: attached by the device when observability is enabled, ``None``
    #: otherwise.  Excluded from equality — two identical commands stay
    #: equal whether or not one was profiled.
    span: Optional[object] = field(default=None, repr=False, compare=False)
    #: Recovery bookkeeping written by the channel/device fault paths and
    #: read by :func:`repro.faults.outcomes.classify_command`.  Like
    #: ``span``, these are measurement state, not command identity, so
    #: they are excluded from equality.
    #: Pages whose first sense drew bit errors that ECC corrected without
    #: climbing the retry ladder (the fault was *masked*).
    masked_page_reads: int = field(default=0, repr=False, compare=False)
    #: Retry-ladder rungs climbed across this command's page reads.
    read_retries: int = field(default=0, repr=False, compare=False)
    #: Program-fail remaps absorbed while placing this command's pages.
    remapped_programs: int = field(default=0, repr=False, compare=False)
    #: Set when a WRITE_FAILED completion was caused by the spare-block
    #: pool running dry (vs. remap-attempt exhaustion).
    spare_pool_exhausted: bool = field(default=False, repr=False,
                                       compare=False)

    def __post_init__(self) -> None:
        if self.lba < 0:
            raise ValueError(f"lba must be >= 0, got {self.lba}")
        if self.sectors < 1 and self.opcode is not IoOpcode.FLUSH:
            raise ValueError(f"sectors must be >= 1, got {self.sectors}")

    @property
    def nbytes(self) -> int:
        return self.sectors * SECTOR_BYTES

    @property
    def is_write(self) -> bool:
        return self.opcode is IoOpcode.WRITE

    @property
    def is_read(self) -> bool:
        return self.opcode is IoOpcode.READ

    @property
    def failed(self) -> bool:
        return self.status is not IoStatus.OK

    @property
    def latency_ps(self) -> int:
        """End-to-end latency (valid after completion)."""
        if self.complete_time_ps < 0 or self.issue_time_ps < 0:
            raise ValueError("command has not completed")
        return self.complete_time_ps - self.issue_time_ps

    def __str__(self) -> str:
        return (f"{self.opcode.name} lba={self.lba} sectors={self.sectors} "
                f"tag={self.tag}")
