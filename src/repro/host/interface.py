"""Host interface models: SATA II with NCQ, and PCI Express with NVMe.

Both are cycle-accurate at the transaction level: every command pays its
protocol handshake overhead and its payload serialization time on the
physical link, which is shared (one lane set / one SATA PHY) among all
outstanding commands.  The defining architectural difference the paper's
Fig. 3/4 experiment exposes is the **queue depth**: SATA NCQ manages at
most 32 commands, NVMe up to 64K per queue.

A common control architecture (AHB slave port + external DMA, per the
paper) means both interfaces present the same API to the platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel import Component, Resource, Simulator
from ..kernel.simtime import ns, us
from ..obs import spans as _obs


@dataclass(frozen=True)
class HostInterfaceSpec:
    """Performance-defining parameters of a host interface."""

    name: str
    #: Payload bytes per second on the link after encoding/framing losses.
    effective_bandwidth_bps: float
    #: Fixed protocol time per command (FIS exchange / SQE+CQE+doorbells).
    command_overhead_ps: int
    #: Maximum outstanding commands (NCQ / NVMe queue depth).
    queue_depth: int

    def __post_init__(self) -> None:
        if self.effective_bandwidth_bps <= 0:
            raise ValueError("effective_bandwidth_bps must be positive")
        if self.command_overhead_ps < 0:
            raise ValueError("command_overhead_ps must be >= 0")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")

    def payload_time_ps(self, nbytes: int) -> int:
        """Serialization time of ``nbytes`` on the link."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return int(round(nbytes / self.effective_bandwidth_bps * 1e12))

    def ideal_throughput_mbps(self, block_bytes: int) -> float:
        """Stand-alone streaming throughput at a given block size —
        the "SATA ideal" / "PCIE ideal" bars of Fig. 3/4."""
        per_command = self.command_overhead_ps + self.payload_time_ps(
            block_bytes)
        return block_bytes / 1e6 / (per_command / 1e12)


def sata_spec(generation: int = 2,
              queue_depth: int = 32) -> HostInterfaceSpec:
    """SATA generation 1/2/3: 1.5/3.0/6.0 Gb/s line rate, 8b/10b coding.

    Framing (FIS headers, CRC, primitives) trims ~2%; the per-command
    overhead covers the H2D command FIS, DMA-setup/activate handshake and
    the D2H status FIS of the NCQ protocol (see :mod:`repro.host.sata`
    for the FIS-level derivation).  NCQ caps the queue at 32 in every
    generation.  The fixed FIS/turnaround overhead scales inversely with
    the line rate (frames serialize faster on faster links).
    """
    line_rates = {1: 1.5, 2: 3.0, 3: 6.0}
    if generation not in line_rates:
        raise ValueError(f"unsupported SATA generation {generation}")
    if not 1 <= queue_depth <= 32:
        raise ValueError("SATA NCQ supports 1..32 outstanding commands")
    raw_mbps = line_rates[generation] * 1e9 / 10
    return HostInterfaceSpec(
        name=f"sata{generation}",
        effective_bandwidth_bps=raw_mbps * 0.98,
        command_overhead_ps=int(us(1.2) * 3.0 / line_rates[generation]),
        queue_depth=queue_depth,
    )


def sata2_spec(queue_depth: int = 32) -> HostInterfaceSpec:
    """SATA II — the paper's host interface (see :func:`sata_spec`)."""
    return sata_spec(generation=2, queue_depth=queue_depth)


def pcie_nvme_spec(generation: int = 2, lanes: int = 8,
                   queue_depth: int = 65536) -> HostInterfaceSpec:
    """PCI Express gen1-3, xN lanes, carrying NVMe.

    Per-lane effective payload rates: gen1/gen2 use 8b/10b (250/500 MB/s
    raw), gen3 uses 128b/130b (~985 MB/s raw); TLP framing with 256 B
    maximum payload size costs ~14%.  NVMe's SQE fetch (64 B), CQE
    write-back (16 B), doorbells and MSI-X cost well under a microsecond —
    the protocol "significantly reduces packetization latencies with
    respect to standard SATA interfaces".
    """
    per_lane_raw = {1: 250e6, 2: 500e6, 3: 985e6}
    if generation not in per_lane_raw:
        raise ValueError(f"unsupported PCIe generation {generation}")
    if lanes not in (1, 2, 4, 8, 16):
        raise ValueError(f"invalid lane count {lanes}")
    if not 1 <= queue_depth <= 65536:
        raise ValueError("NVMe queue depth must be in 1..65536")
    tlp_efficiency = 0.86  # 256 B MPS with 20 B header+framing overhead
    return HostInterfaceSpec(
        name=f"pcie-gen{generation}-x{lanes}-nvme",
        effective_bandwidth_bps=per_lane_raw[generation] * lanes
        * tlp_efficiency,
        command_overhead_ps=ns(700),
        queue_depth=queue_depth,
    )


class HostInterface(Component):
    """The host-side port of the SSD.

    Owns the link (a FIFO resource — one frame at a time) and the queue
    slots.  The SSD device composes these primitives into the full command
    flow; see :mod:`repro.ssd.device`.
    """

    def __init__(self, sim: Simulator, spec: HostInterfaceSpec,
                 name: str = "hostif", parent: Component = None):
        super().__init__(sim, name, parent)
        self.spec = spec
        self.link = Resource(sim, f"{name}.link", capacity=1)
        self.queue_slots = Resource(sim, f"{name}.queue",
                                    capacity=spec.queue_depth)

    def acquire_slot(self):
        """Generator: obtain a queue tag (blocks at full queue depth)."""
        grant = self.queue_slots.acquire()
        yield grant
        return grant

    def release_slot(self, grant) -> None:
        self.queue_slots.release(grant)

    def transfer(self, nbytes: int, with_command_overhead: bool = True,
                 span=None):
        """Generator: move one command's payload over the link.

        ``span`` is an optional :class:`~repro.obs.spans.CommandSpan`:
        waiting for the shared link is marked ``queue``, the wire time
        ``host_xfer``.
        """
        grant = self.link.acquire()
        yield grant
        if span is not None:
            span.mark("queue", self.sim.now)
        t0 = self.sim.now if _obs.enabled else -1
        duration = self.spec.payload_time_ps(nbytes)
        if with_command_overhead:
            duration += self.spec.command_overhead_ps
        yield self.sim.timeout(duration)
        self.link.release(grant)
        if span is not None:
            span.mark("host_xfer", self.sim.now)
        if t0 >= 0:
            _obs.record_span(self.path(), "host_xfer", t0, self.sim.now)
        self.stats.meter("link").record(nbytes)
        self.stats.counter("transfers").increment()

    def utilization(self) -> float:
        return self.link.utilization()
