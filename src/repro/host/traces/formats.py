"""Streaming trace parsers: native, MSR-Cambridge CSV, blkparse text.

All three parsers are generators over lines — a multi-gigabyte trace
replays with O(1) parser memory.  Malformed input always raises
:class:`TraceError` carrying ``<source>:<line>``; no input crashes a
parser with anything else.

Formats
-------
``native``
    The repo's own format (one request per line)::

        <issue_time_us> <R|W|T|F> <lba> <sectors>

    ``#`` starts a comment; issue times are kept as-is.

``msr``
    MSR-Cambridge block traces (SNIA IOTTA), 7 comma-separated columns::

        Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

    ``Timestamp`` and ``ResponseTime`` are Windows filetime ticks
    (100 ns); ``Offset``/``Size`` are bytes.  Timestamps are rebased so
    the first record issues at t=0; a timestamp earlier than the first
    record's is an error (clamping would silently reorder it).

``blkparse``
    ``blkparse`` standard text output.  Only queue records (action
    ``Q``) become requests — blkparse emits one line per lifecycle stage
    and counting more than one would duplicate every request.  Lines
    whose first token is not a ``major,minor`` device (per-CPU summary
    blocks, totals) are skipped, as are non-``Q`` records; a line that
    *starts* like a queue record but cannot be parsed is an error.
"""

from __future__ import annotations

import os
import re
from typing import Callable, Dict, Iterable, Iterator, Optional, Tuple

from ..commands import IoOpcode
from .records import TraceError, TraceRecord

TRACE_FORMATS = ("native", "msr", "blkparse")

#: Windows filetime tick (MSR timestamp/response unit): 100 ns in ps.
_FILETIME_TICK_PS = 100_000

_NATIVE_OPCODES = {
    "R": IoOpcode.READ,
    "W": IoOpcode.WRITE,
    "T": IoOpcode.TRIM,
    "F": IoOpcode.FLUSH,
}
_NATIVE_LETTER = {opcode: letter
                  for letter, opcode in _NATIVE_OPCODES.items()}

_DEVICE_RE = re.compile(r"^\d+,\d+$")


def _error(source: str, line_number: int, message: str) -> TraceError:
    return TraceError(f"{source}:{line_number}: {message}")


# ----------------------------------------------------------------------
# Native format


def _parse_native(lines: Iterable[str], source: str
                  ) -> Iterator[TraceRecord]:
    for line_number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 4:
            raise _error(source, line_number,
                         f"expected 'time op lba sectors', got {raw!r}")
        time_text, op_text, lba_text, sectors_text = fields
        opcode = _NATIVE_OPCODES.get(op_text.upper())
        if opcode is None:
            raise _error(source, line_number,
                         f"unknown opcode {op_text!r}")
        try:
            issue_us = float(time_text)
            lba = int(lba_text)
            sectors = int(sectors_text)
        except ValueError as exc:
            raise _error(source, line_number, str(exc)) from None
        if issue_us < 0:
            raise _error(source, line_number, "negative issue time")
        try:
            yield TraceRecord(issue_ps=int(round(issue_us * 1e6)),
                              opcode=opcode, lba=lba, sectors=sectors)
        except ValueError as exc:
            raise _error(source, line_number, str(exc)) from None


def _emit_native(records: Iterable[TraceRecord]) -> Iterator[str]:
    yield "# time_us op lba sectors"
    for record in records:
        yield (f"{record.issue_ps / 1e6:.3f} "
               f"{_NATIVE_LETTER[record.opcode]} "
               f"{record.lba} {record.sectors}")


# ----------------------------------------------------------------------
# MSR-Cambridge CSV


_MSR_TYPES = {
    "read": IoOpcode.READ, "r": IoOpcode.READ,
    "write": IoOpcode.WRITE, "w": IoOpcode.WRITE,
}


def _parse_msr(lines: Iterable[str], source: str) -> Iterator[TraceRecord]:
    first_ticks: Optional[int] = None
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if first_ticks is None and line.lower().startswith("timestamp"):
            continue  # optional header row
        fields = line.split(",")
        if len(fields) != 7:
            raise _error(source, line_number,
                         f"expected 7 CSV fields "
                         f"(Timestamp,Hostname,DiskNumber,Type,Offset,"
                         f"Size,ResponseTime), got {len(fields)}")
        ts_text, _host, _disk, type_text, offset_text, size_text, \
            response_text = fields
        opcode = _MSR_TYPES.get(type_text.strip().lower())
        if opcode is None:
            raise _error(source, line_number,
                         f"unknown request type {type_text!r}")
        try:
            ticks = int(ts_text)
            offset = int(offset_text)
            size = int(size_text)
            response_ticks = int(response_text)
        except ValueError as exc:
            raise _error(source, line_number, str(exc)) from None
        if offset < 0:
            raise _error(source, line_number, "negative offset")
        if size <= 0:
            raise _error(source, line_number,
                         f"size must be positive, got {size}")
        if response_ticks < 0:
            raise _error(source, line_number, "negative response time")
        if first_ticks is None:
            first_ticks = ticks
        elif ticks < first_ticks:
            # Silently clamping would reorder the record to the trace
            # start and distort inter-arrival/queue-depth statistics.
            raise _error(source, line_number,
                         f"timestamp {ticks} precedes the first "
                         f"record's {first_ticks}; sort the trace "
                         f"before ingesting it")
        issue_ps = (ticks - first_ticks) * _FILETIME_TICK_PS
        yield TraceRecord(
            issue_ps=issue_ps, opcode=opcode, lba=offset // 512,
            sectors=max(1, (size + 511) // 512),
            response_ps=response_ticks * _FILETIME_TICK_PS)


def _emit_msr(records: Iterable[TraceRecord]) -> Iterator[str]:
    kind_of = {IoOpcode.READ: "Read", IoOpcode.WRITE: "Write"}
    for record in records:
        kind = kind_of.get(record.opcode)
        if kind is None:
            raise TraceError(f"MSR-Cambridge format has no "
                             f"{record.opcode.name} request type")
        response = (record.response_ps or 0) // _FILETIME_TICK_PS
        yield (f"{record.issue_ps // _FILETIME_TICK_PS},trace,0,{kind},"
               f"{record.lba * 512},{record.nbytes},{response}")


# ----------------------------------------------------------------------
# blkparse text output


def _rwbs_opcode(rwbs: str) -> Optional[IoOpcode]:
    """Map a blkparse RWBS flag string to an opcode (None = skip)."""
    if "D" in rwbs:
        return IoOpcode.TRIM
    if "R" in rwbs:
        return IoOpcode.READ
    if "W" in rwbs:
        return IoOpcode.WRITE
    if "F" in rwbs:
        return IoOpcode.FLUSH
    return None  # 'N' (no data) and friends


def _parse_blkparse(lines: Iterable[str], source: str
                    ) -> Iterator[TraceRecord]:
    first_ps: Optional[int] = None
    saw_record_line = False
    for line_number, raw in enumerate(lines, start=1):
        tokens = raw.split()
        if not tokens or not _DEVICE_RE.match(tokens[0]):
            continue  # summary block, totals, blank line
        saw_record_line = True
        if len(tokens) < 6:
            raise _error(source, line_number,
                         f"truncated blkparse record: {raw!r}")
        action = tokens[5]
        if action != "Q":
            continue  # other lifecycle stages of the same request
        if len(tokens) < 7:
            raise _error(source, line_number,
                         f"queue record missing RWBS flags: {raw!r}")
        opcode = _rwbs_opcode(tokens[6])
        if opcode is None:
            # No-payload records (RWBS 'N': barriers, flush markers)
            # carry no 'sector + count' section at all, so skip them
            # before enforcing the payload shape.
            continue
        if len(tokens) < 10 or tokens[8] != "+":
            raise _error(source, line_number,
                         f"expected 'sector + count' payload in "
                         f"queue record: {raw!r}")
        time_text = tokens[3]
        try:
            if "." in time_text:
                seconds_text, frac_text = time_text.split(".", 1)
                if not frac_text.isdigit():
                    raise ValueError(f"bad timestamp {time_text!r}")
                nanos = int(frac_text.ljust(9, "0")[:9])
            else:
                seconds_text, nanos = time_text, 0
            issue_ps = int(seconds_text) * 10**12 + nanos * 1000
            sector = int(tokens[7])
            count = int(tokens[9])
        except ValueError as exc:
            raise _error(source, line_number, str(exc)) from None
        if first_ps is None:
            first_ps = issue_ps
        try:
            yield TraceRecord(issue_ps=max(0, issue_ps - first_ps),
                              opcode=opcode, lba=sector, sectors=count)
        except ValueError as exc:
            raise _error(source, line_number, str(exc)) from None
    if not saw_record_line:
        raise TraceError(f"{source}: no blkparse records found "
                         f"(expected lines starting with 'major,minor')")


def _emit_blkparse(records: Iterable[TraceRecord]) -> Iterator[str]:
    rwbs_of = {IoOpcode.READ: "R", IoOpcode.WRITE: "W",
               IoOpcode.TRIM: "D", IoOpcode.FLUSH: "F"}
    for seq, record in enumerate(records, start=1):
        seconds, rest = divmod(record.issue_ps, 10**12)
        yield (f"  8,0    0 {seq:>8} {seconds:>5}.{rest // 1000:09d} "
               f"{1000 + seq:>5}  Q {rwbs_of[record.opcode]} "
               f"{record.lba} + {record.sectors} [trace]")


# ----------------------------------------------------------------------
# Registry, detection, entry points


_PARSERS: Dict[str, Callable[[Iterable[str], str],
                             Iterator[TraceRecord]]] = {
    "native": _parse_native,
    "msr": _parse_msr,
    "blkparse": _parse_blkparse,
}

_EMITTERS: Dict[str, Callable[[Iterable[TraceRecord]],
                              Iterator[str]]] = {
    "native": _emit_native,
    "msr": _emit_msr,
    "blkparse": _emit_blkparse,
}


def detect_format(sample_lines: Iterable[str],
                  source: str = "<trace>") -> str:
    """Identify the trace format from the first content lines.

    Detection keys on line *shape*, so it survives shuffled record
    order: every record of a format matches the same test.
    """
    for raw in sample_lines:
        line = raw.split("#", 1)[0].strip() if "#" in raw else raw.strip()
        if not line:
            continue
        if line.lower().startswith("timestamp") and "," in line:
            return "msr"
        tokens = line.split()
        if _DEVICE_RE.match(tokens[0]) and len(tokens) >= 6:
            return "blkparse"
        comma_fields = line.split(",")
        if len(comma_fields) == 7 and comma_fields[0].strip().isdigit():
            return "msr"
        if len(tokens) == 4 and tokens[1].upper() in _NATIVE_OPCODES:
            return "native"
        raise TraceError(
            f"{source}: unrecognized trace format (not native, "
            f"MSR-Cambridge CSV or blkparse): {raw!r}")
    raise TraceError(f"{source}: empty trace (no content lines)")


def detect_format_of_file(path: str, sniff_bytes: int = 65536) -> str:
    """:func:`detect_format` on a file prefix (never reads it whole)."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        prefix = handle.read(sniff_bytes)
    return detect_format(prefix.splitlines(), source=path)


def parse_trace_lines(lines: Iterable[str], fmt: str,
                      source: str = "<trace>") -> Iterator[TraceRecord]:
    """Parse an explicit line stream (``fmt`` must be concrete)."""
    parser = _PARSERS.get(fmt)
    if parser is None:
        raise TraceError(f"unknown trace format {fmt!r}; "
                         f"choose from {list(TRACE_FORMATS)}")
    return parser(lines, source)


def iter_trace(path: str, fmt: str = "auto") -> Iterator[TraceRecord]:
    """Stream records from a trace file, auto-detecting the format.

    The file is read line by line; peak memory is independent of trace
    length (verified by ``tests/host/test_trace_streaming.py``).
    """
    if fmt == "auto":
        fmt = detect_format_of_file(path)
    parser = _PARSERS.get(fmt)
    if parser is None:
        raise TraceError(f"unknown trace format {fmt!r}; "
                         f"choose from {list(TRACE_FORMATS)} or 'auto'")
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        yield from parser(handle, path)


def emit_records(records: Iterable[TraceRecord], fmt: str) -> Iterator[str]:
    """Render records as trace lines in ``fmt`` (inverse of parsing).

    Times quantize to the format's native resolution (µs for native,
    100 ns ticks for MSR, ns for blkparse), so emit→parse→emit is a
    fixed point for any parsed stream.
    """
    emitter = _EMITTERS.get(fmt)
    if emitter is None:
        raise TraceError(f"unknown trace format {fmt!r}; "
                         f"choose from {list(TRACE_FORMATS)}")
    return emitter(records)


def write_trace_file(path: str, records: Iterable[TraceRecord],
                     fmt: str) -> int:
    """Write records to ``path`` in ``fmt``; returns the line count.

    The write is atomic: lines stream to a sibling temp file that is
    renamed over ``path`` only on success, so a mid-stream failure
    (e.g. a TRIM record bound for the MSR format) never leaves a
    truncated destination behind.
    """
    lines = 0
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for line in emit_records(records, fmt):
                handle.write(line + "\n")
                lines += 1
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    os.replace(tmp_path, path)
    return lines
