"""Single-pass trace characterization.

Design-space conclusions only hold under realistic workloads (EagleTree's
central warning), so before a trace drives an experiment the platform
reports *what kind* of workload it actually is: read/write mix,
footprint, sequentiality, request-size and inter-arrival histograms, and
the queue depth the traced host implied.  Everything is computed in one
streaming pass; only the footprint tracker grows with the trace (one set
entry per unique 4 KiB block touched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..commands import IoOpcode
from .records import TraceRecord

#: Footprint granularity: unique-block tracking at 4 KiB.
_FOOTPRINT_BLOCK_BYTES = 4096

#: Two requests closer than this are "back to back" for the burst-based
#: queue-depth estimate used when the trace has no response times.
_BURST_GAP_PS = 1_000_000  # 1 us

_SIZE_BUCKETS_BYTES: Tuple[int, ...] = (
    4096, 8192, 16384, 32768, 65536, 131072, 262144)

_ARRIVAL_BUCKETS_PS: Tuple[Tuple[str, int], ...] = (
    ("<1us", 1_000_000),
    ("1-10us", 10_000_000),
    ("10-100us", 100_000_000),
    ("100us-1ms", 1_000_000_000),
    ("1-10ms", 10_000_000_000),
)
_ARRIVAL_OVERFLOW = ">10ms"


def _size_bucket(nbytes: int) -> str:
    for edge in _SIZE_BUCKETS_BYTES:
        if nbytes <= edge:
            return f"<={edge // 1024}K"
    return f">{_SIZE_BUCKETS_BYTES[-1] // 1024}K"


def _arrival_bucket(gap_ps: int) -> str:
    for label, edge in _ARRIVAL_BUCKETS_PS:
        if gap_ps < edge:
            return label
    return _ARRIVAL_OVERFLOW


@dataclass
class TraceProfile:
    """The characterization report for one record stream."""

    records: int = 0
    reads: int = 0
    writes: int = 0
    trims: int = 0
    flushes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Unique 4 KiB blocks touched x 4096 (the working-set size).
    footprint_bytes: int = 0
    #: max(end LBA) - min(LBA), in bytes (the addressed span).
    span_bytes: int = 0
    #: Fraction of data-carrying requests (after the first) starting
    #: exactly where the previous one ended.
    sequential_fraction: float = 0.0
    duration_s: float = 0.0
    mean_iops: float = 0.0
    mean_size_bytes: float = 0.0
    #: Request-size histogram (power-of-two byte buckets).
    size_hist: Dict[str, int] = field(default_factory=dict)
    #: Inter-arrival-gap histogram (log-spaced time buckets).
    interarrival_hist: Dict[str, int] = field(default_factory=dict)
    #: Mean requests in flight.  Little's law over the traced response
    #: times when the format records them (MSR does); otherwise the mean
    #: length of back-to-back arrival bursts (gap < 1 us).
    implied_queue_depth: float = 0.0
    #: True when implied_queue_depth came from real response times.
    has_response_times: bool = False

    @property
    def read_fraction(self) -> float:
        data = self.reads + self.writes
        return self.reads / data if data else 0.0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def dominant_pattern(self) -> str:
        """'sequential' or 'random' — the key the WAF model expects."""
        return "sequential" if self.sequential_fraction >= 0.5 \
            else "random"

    def to_dict(self) -> Dict[str, object]:
        return {
            "records": self.records,
            "reads": self.reads,
            "writes": self.writes,
            "trims": self.trims,
            "flushes": self.flushes,
            "read_fraction": self.read_fraction,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "footprint_bytes": self.footprint_bytes,
            "span_bytes": self.span_bytes,
            "sequential_fraction": self.sequential_fraction,
            "dominant_pattern": self.dominant_pattern,
            "duration_s": self.duration_s,
            "mean_iops": self.mean_iops,
            "mean_size_bytes": self.mean_size_bytes,
            "size_hist": dict(self.size_hist),
            "interarrival_hist": dict(self.interarrival_hist),
            "implied_queue_depth": self.implied_queue_depth,
            "has_response_times": self.has_response_times,
        }


def characterize(records: Iterable[TraceRecord]) -> TraceProfile:
    """One streaming pass over ``records`` -> :class:`TraceProfile`."""
    profile = TraceProfile()
    touched_blocks = set()
    min_lba: Optional[int] = None
    max_end = 0
    first_ps: Optional[int] = None
    last_ps = 0
    last_end: Optional[int] = None
    sequential_hits = 0
    data_requests = 0
    prev_issue: Optional[int] = None
    response_sum = 0
    last_completion = 0
    burst_len = 0
    burst_sum = 0
    burst_count = 0

    for record in records:
        profile.records += 1
        if record.opcode is IoOpcode.READ:
            profile.reads += 1
            profile.bytes_read += record.nbytes
        elif record.opcode is IoOpcode.WRITE:
            profile.writes += 1
            profile.bytes_written += record.nbytes
        elif record.opcode is IoOpcode.TRIM:
            profile.trims += 1
        else:
            profile.flushes += 1

        if first_ps is None:
            first_ps = record.issue_ps
        last_ps = max(last_ps, record.issue_ps)

        if prev_issue is not None:
            gap = max(0, record.issue_ps - prev_issue)
            label = _arrival_bucket(gap)
            profile.interarrival_hist[label] = \
                profile.interarrival_hist.get(label, 0) + 1
            if gap < _BURST_GAP_PS:
                burst_len += 1
            else:
                burst_sum += burst_len + 1
                burst_count += 1
                burst_len = 0
        prev_issue = record.issue_ps

        if record.response_ps is not None:
            profile.has_response_times = True
            response_sum += record.response_ps
            last_completion = max(last_completion,
                                  record.issue_ps + record.response_ps)

        if record.sectors > 0:
            data_requests += 1
            label = _size_bucket(record.nbytes)
            profile.size_hist[label] = profile.size_hist.get(label, 0) + 1
            if last_end is not None and record.lba == last_end:
                sequential_hits += 1
            last_end = record.end_lba
            if min_lba is None or record.lba < min_lba:
                min_lba = record.lba
            max_end = max(max_end, record.end_lba)
            start_block = record.lba * 512 // _FOOTPRINT_BLOCK_BYTES
            end_block = (record.end_lba * 512 - 1) \
                // _FOOTPRINT_BLOCK_BYTES
            touched_blocks.update(range(start_block, end_block + 1))

    if profile.records == 0:
        return profile
    if prev_issue is not None:
        burst_sum += burst_len + 1
        burst_count += 1

    profile.footprint_bytes = len(touched_blocks) * _FOOTPRINT_BLOCK_BYTES
    if min_lba is not None:
        profile.span_bytes = (max_end - min_lba) * 512
    if data_requests > 1:
        profile.sequential_fraction = sequential_hits / (data_requests - 1)
    if data_requests:
        profile.mean_size_bytes = profile.total_bytes / data_requests

    span_ps = (last_ps - (first_ps or 0))
    profile.duration_s = span_ps / 1e12
    if span_ps > 0:
        profile.mean_iops = profile.records / profile.duration_s
    if profile.has_response_times:
        window = max(last_completion - (first_ps or 0), 1)
        profile.implied_queue_depth = response_sum / window
    elif burst_count:
        profile.implied_queue_depth = burst_sum / burst_count
    return profile


def format_profile(profile: TraceProfile, source: str = "") -> str:
    """Render the characterization report as an aligned text table."""
    def fmt_bytes(n: float) -> str:
        for unit in ("B", "KiB", "MiB", "GiB"):
            if n < 1024 or unit == "GiB":
                return f"{n:.1f} {unit}" if unit != "B" \
                    else f"{int(n)} {unit}"
            n /= 1024
        return f"{n:.1f} GiB"

    rows: List[Tuple[str, str]] = []
    if source:
        rows.append(("trace", source))
    rows.extend([
        ("requests", f"{profile.records} "
                     f"({profile.reads} R / {profile.writes} W"
                     + (f" / {profile.trims} T" if profile.trims else "")
                     + (f" / {profile.flushes} F"
                        if profile.flushes else "") + ")"),
        ("read fraction", f"{profile.read_fraction:.1%}"),
        ("data moved", f"{fmt_bytes(profile.total_bytes)} "
                       f"({fmt_bytes(profile.bytes_read)} read, "
                       f"{fmt_bytes(profile.bytes_written)} written)"),
        ("footprint", fmt_bytes(profile.footprint_bytes)),
        ("addressed span", fmt_bytes(profile.span_bytes)),
        ("sequentiality", f"{profile.sequential_fraction:.1%} "
                          f"({profile.dominant_pattern})"),
        ("mean request", fmt_bytes(profile.mean_size_bytes)),
        ("duration", f"{profile.duration_s * 1e3:.3f} ms"),
        ("mean rate", f"{profile.mean_iops:.0f} IOPS"),
        ("implied QD", f"{profile.implied_queue_depth:.2f} "
                       + ("(Little's law over traced response times)"
                          if profile.has_response_times
                          else "(arrival-burst estimate)")),
    ])
    width = max(len(name) for name, __ in rows)
    lines = [f"{name:<{width}} : {value}" for name, value in rows]
    hist_lines = _format_hists(profile)
    return "\n".join(lines + hist_lines)


def _format_hists(profile: TraceProfile) -> List[str]:
    lines: List[str] = []
    for title, hist, order in (
            ("request sizes", profile.size_hist,
             [f"<={e // 1024}K" for e in _SIZE_BUCKETS_BYTES]
             + [f">{_SIZE_BUCKETS_BYTES[-1] // 1024}K"]),
            ("inter-arrival gaps", profile.interarrival_hist,
             [label for label, __ in _ARRIVAL_BUCKETS_PS]
             + [_ARRIVAL_OVERFLOW])):
        if not hist:
            continue
        total = sum(hist.values())
        lines.append(f"{title}:")
        for label in order:
            count = hist.get(label, 0)
            if not count:
                continue
            bar = "#" * max(1, round(24 * count / total))
            lines.append(f"  {label:>9} {count:>7}  {bar}")
    return lines
