"""Record-stream transforms: fit any trace to any simulated device.

All transforms are generators — they compose with the streaming parsers
without materializing the trace.  A typical replay pipeline::

    records = iter_trace(path)                      # parse
    records = wrap_to_device(records, arch)         # fit the geometry
    records = scale_time(records, 0.1)              # 10x faster arrivals
    commands = records_to_commands(records)         # ready to run
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .records import TraceRecord


def wrap_to_capacity(records: Iterable[TraceRecord],
                     capacity_sectors: int) -> Iterator[TraceRecord]:
    """Wrap LBAs into ``[0, capacity_sectors)`` so a trace captured on a
    larger disk fits the simulated drive.

    The modulo keeps the access *pattern* (two requests to the same
    original LBA still collide after wrapping); a request that would
    cross the capacity boundary is shifted back, and one larger than the
    whole device is clamped to it.
    """
    if capacity_sectors < 1:
        raise ValueError(f"capacity_sectors must be >= 1, "
                         f"got {capacity_sectors}")
    for record in records:
        sectors = min(record.sectors, capacity_sectors)
        lba = record.lba % capacity_sectors
        if lba + sectors > capacity_sectors:
            lba = capacity_sectors - sectors
        if lba == record.lba and sectors == record.sectors:
            yield record
        else:
            yield TraceRecord(issue_ps=record.issue_ps,
                              opcode=record.opcode, lba=lba,
                              sectors=sectors,
                              response_ps=record.response_ps)


def wrap_to_device(records: Iterable[TraceRecord],
                   arch) -> Iterator[TraceRecord]:
    """:func:`wrap_to_capacity` against an architecture's user capacity."""
    return wrap_to_capacity(records, arch.user_capacity_bytes // 512)


def scale_time(records: Iterable[TraceRecord],
               factor: float) -> Iterator[TraceRecord]:
    """Scale issue times by ``factor`` (0.5 = replay twice as fast).

    Response-time hints scale with the clock so Little's-law estimates
    stay consistent.
    """
    if factor <= 0:
        raise ValueError(f"time scale factor must be positive, "
                         f"got {factor}")
    for record in records:
        response = record.response_ps
        yield TraceRecord(
            issue_ps=int(round(record.issue_ps * factor)),
            opcode=record.opcode, lba=record.lba, sectors=record.sectors,
            response_ps=None if response is None
            else int(round(response * factor)))


def rebase_time(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Shift issue times so the first record issues at t=0."""
    base: Optional[int] = None
    for record in records:
        if base is None:
            base = record.issue_ps
        if base == 0:
            yield record
        else:
            yield TraceRecord(issue_ps=record.issue_ps - base
                              if record.issue_ps >= base else 0,
                              opcode=record.opcode, lba=record.lba,
                              sectors=record.sectors,
                              response_ps=record.response_ps)


def limit_records(records: Iterable[TraceRecord],
                  max_records: Optional[int]) -> Iterator[TraceRecord]:
    """Pass through at most ``max_records`` records (None = all)."""
    if max_records is None:
        yield from records
        return
    if max_records < 1:
        raise ValueError(f"max_records must be >= 1, got {max_records}")
    for index, record in enumerate(records):
        if index >= max_records:
            return
        yield record
