"""Steady-state preconditioning before trace measurement.

A fresh simulated drive starts with an empty write cache and untouched
flash; measuring a short trace against it reports the out-of-box
transient, not the steady state a deployed drive lives in (the regime
SNIA's SSS-PTS and EagleTree both insist measurements start from).  The
helpers here build a deterministic warm-up stream over the *measured
region* — a sequential fill followed by scattered overwrites — that the
replay harness runs to completion (and discards) before the measured
replay begins.

The warm-up covers the trace's addressed region rather than the whole
device so preconditioning stays proportional to the workload under
study, not to the simulated capacity.
"""

from __future__ import annotations

from typing import List

from ..commands import IoCommand, IoOpcode

PRECONDITION_MODES = ("none", "fill", "steady")


def preconditioning_commands(span_sectors: int, mode: str = "steady",
                             block_bytes: int = 4096,
                             overwrite_fraction: float = 0.25,
                             seed: int = 0x5EED) -> List[IoCommand]:
    """Build the warm-up command stream for a measured region.

    ``fill`` writes the region once, sequentially; ``steady`` follows the
    fill with ``overwrite_fraction`` of the region's blocks rewritten at
    xorshift-random offsets, dirtying the mapping the way an aged drive's
    is.  ``none`` returns an empty list.  Deterministic for a given
    (span, mode, fraction, seed).
    """
    if mode not in PRECONDITION_MODES:
        raise ValueError(f"precondition mode must be one of "
                         f"{PRECONDITION_MODES}, got {mode!r}")
    if span_sectors < 1:
        raise ValueError(f"span_sectors must be >= 1, got {span_sectors}")
    if block_bytes < 512 or block_bytes % 512:
        raise ValueError("block_bytes must be a positive multiple of 512")
    if not 0.0 <= overwrite_fraction <= 1.0:
        raise ValueError(f"overwrite_fraction must be in [0, 1], "
                         f"got {overwrite_fraction}")
    if mode == "none":
        return []
    sectors_per_block = block_bytes // 512
    blocks = max(1, span_sectors // sectors_per_block)
    commands: List[IoCommand] = []
    for index in range(blocks):
        commands.append(IoCommand(IoOpcode.WRITE,
                                  index * sectors_per_block,
                                  sectors_per_block, tag=len(commands)))
    if mode == "steady":
        state = seed or 1
        for __ in range(int(blocks * overwrite_fraction)):
            state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
            state ^= state >> 7
            state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
            commands.append(IoCommand(IoOpcode.WRITE,
                                      (state % blocks) * sectors_per_block,
                                      sectors_per_block,
                                      tag=len(commands)))
    return commands


def run_preconditioning(sim, device, span_sectors: int,
                        mode: str = "steady",
                        block_bytes: int = 4096,
                        overwrite_fraction: float = 0.25,
                        seed: int = 0x5EED) -> int:
    """Drive the warm-up stream through ``device`` to completion.

    Runs closed-loop (as fast as the queue admits) and returns the
    number of warm-up commands executed.  The caller measures afterwards
    on the same device; :func:`repro.ssd.metrics.run_workload` computes
    its figures relative to the measurement window, so the warm-up phase
    never pollutes the measured numbers.
    """
    from ...ssd.metrics import run_workload  # deferred: import cycle
    from ..workload import CommandListWorkload
    commands = preconditioning_commands(
        span_sectors, mode=mode, block_bytes=block_bytes,
        overwrite_fraction=overwrite_fraction, seed=seed)
    if not commands:
        return 0
    run_workload(sim, device, CommandListWorkload(commands, pattern="random"),
                 label="precondition")
    return len(commands)
