"""The normalized trace record every parser and transform speaks.

A :class:`TraceRecord` is one host request, independent of the on-disk
trace format: picosecond issue time, opcode, 512-byte-sector extent and
(when the source trace measured it, e.g. MSR-Cambridge) the original
response time.  Parsers yield them lazily; :func:`records_to_commands`
turns a record stream into the :class:`~repro.host.commands.IoCommand`
stream the runner executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..commands import IoCommand, IoOpcode


class TraceError(ValueError):
    """Malformed trace input.

    Parsers raise it with ``<source>:<line>:`` prefixes so a bad line in
    a million-line trace is reported exactly, never as a bare crash.
    """


@dataclass(frozen=True)
class TraceRecord:
    """One parsed trace request, normalized to simulator units."""

    issue_ps: int
    opcode: IoOpcode
    lba: int
    sectors: int
    #: Response time measured on the traced system (MSR-Cambridge records
    #: one); ``None`` when the format carries no completion information.
    response_ps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.issue_ps < 0:
            raise ValueError(f"issue_ps must be >= 0, got {self.issue_ps}")
        if self.lba < 0:
            raise ValueError(f"lba must be >= 0, got {self.lba}")
        if self.sectors < 0 or (self.sectors == 0
                                and self.opcode is not IoOpcode.FLUSH):
            raise ValueError(f"sectors must be >= 1, got {self.sectors}")

    @property
    def nbytes(self) -> int:
        return self.sectors * 512

    @property
    def end_lba(self) -> int:
        return self.lba + self.sectors


def records_to_commands(records: Iterable[TraceRecord]
                        ) -> Iterator[IoCommand]:
    """Turn a record stream into tagged, issue-timed ``IoCommand``s."""
    for tag, record in enumerate(records):
        command = IoCommand(record.opcode, record.lba, record.sectors,
                            tag=tag)
        command.issue_time_ps = record.issue_ps
        yield command
