"""Real-trace workload ingestion.

The paper's host interfaces are driven by a "command/data trace player"
(Section III-C1); this package grows that player from the toy native
format into a real ingestion pipeline:

* :mod:`repro.host.traces.formats` — streaming parsers for the native
  format, MSR-Cambridge CSV and blkparse/blktrace text, with format
  auto-detection and ``file:line`` diagnostics on malformed input,
* :mod:`repro.host.traces.transforms` — LBA wrap-to-geometry and
  time-scaling generators so any trace fits any simulated device,
* :mod:`repro.host.traces.characterize` — a single-pass workload
  characterization report (mix, footprint, sequentiality, histograms,
  implied queue depth),
* :mod:`repro.host.traces.precondition` — steady-state preconditioning
  command streams (fill + random overwrite) run before measurement.

Every parser and transform is an iterator over :class:`TraceRecord`;
peak memory is independent of trace length.
"""

from .characterize import TraceProfile, characterize, format_profile
from .formats import (TRACE_FORMATS, detect_format, detect_format_of_file,
                      emit_records, iter_trace, parse_trace_lines,
                      write_trace_file)
from .precondition import (PRECONDITION_MODES, preconditioning_commands,
                           run_preconditioning)
from .records import TraceError, TraceRecord, records_to_commands
from .transforms import (limit_records, rebase_time, scale_time,
                         wrap_to_capacity, wrap_to_device)

__all__ = [
    "TRACE_FORMATS", "TraceError", "TraceProfile", "TraceRecord",
    "PRECONDITION_MODES",
    "characterize", "detect_format", "detect_format_of_file",
    "emit_records", "format_profile", "iter_trace", "limit_records",
    "parse_trace_lines", "preconditioning_commands",
    "rebase_time", "records_to_commands", "run_preconditioning",
    "scale_time", "wrap_to_capacity", "wrap_to_device",
    "write_trace_file",
]
