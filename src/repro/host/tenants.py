"""Multi-initiator host layer: tenants, namespaces, queue arbitration.

"Millions of users" means N concurrent independent streams contending
inside one device, not one trace player.  This module models the host
side of that: a :class:`Tenant` binds a named workload (IOZone-style
synthetic generator, trace file, or an app-shaped key-value / page-I/O
generator) to its own NVMe submission queue and LBA namespace partition,
and a :class:`QueueArbiter` (round-robin or weighted-round-robin, built
on :class:`~repro.host.nvme.QueuePair` and the arbitration primitives)
interleaves the tenant streams into the single order in which commands
enter the device.

The arbiter is a pure state machine, like the queue pairs it drives: in
the closed-loop (saturating) regime every submission queue is non-empty
whenever the controller arbitrates, so the service order is exactly the
interleave the ring bookkeeping computes — per-tenant queue depth bounds
how many SQEs a tenant can offer per round, and a weighted burst larger
than the ring simply forfeits the remainder.  Open-loop tenants (paced
arrivals) are merged by issue time, with the arbitration interleave
breaking simultaneous-arrival ties.  Because the merge adds no simulated
work, a single tenant degenerates *byte-identically* to the plain
single-initiator ``run_workload`` path — the property the tenant
determinism tier locks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .commands import IoCommand, IoOpcode, SECTOR_BYTES
from .nvme import (QueuePair, round_robin_arbitrate,
                   weighted_round_robin_arbitrate)
from .workload import CommandListWorkload, IOZONE_SUITE, mixed_workload

#: Arbitration policies the arbiter implements (NVMe round-robin and
#: weighted-round-robin with burst == weight).
ARBITRATION_POLICIES = ("rr", "wrr")

#: Workload shapes a tenant can bind (plus the four IOZONE_SUITE keys).
TENANT_WORKLOADS = tuple(sorted(IOZONE_SUITE)) + ("mixed", "kv", "pageio",
                                                  "trace")

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _xorshift(state: int) -> int:
    state ^= (state << 13) & _MASK64
    state ^= state >> 7
    state ^= (state << 17) & _MASK64
    return state


# ----------------------------------------------------------------------
# App-shaped generators


def kv_store_workload(n_ops: int, value_bytes: int = 4096,
                      read_fraction: float = 0.8,
                      hot_fraction: float = 0.125,
                      hot_ops_fraction: float = 0.875,
                      span_bytes: int = 1 << 26,
                      seed: int = 0x5EED) -> CommandListWorkload:
    """Key-value store shape: point gets/puts with a hot key set.

    ``hot_ops_fraction`` of operations target the ``hot_fraction``
    head of the key space (the classic skewed-popularity profile), the
    rest scatter over the cold tail.  Deterministic xorshift streams
    drive key choice and the read/write split; the WAF pattern is
    ``random`` — even hot-set updates land scattered.
    """
    if n_ops < 1:
        raise ValueError("n_ops must be >= 1")
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(f"read_fraction must be in [0, 1], "
                         f"got {read_fraction}")
    if not 0.0 < hot_fraction <= 1.0 or not 0.0 <= hot_ops_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1], "
                         "hot_ops_fraction in [0, 1]")
    sectors_per_value = max(1, value_bytes // SECTOR_BYTES)
    n_keys = max(1, span_bytes // value_bytes)
    n_hot = max(1, int(n_keys * hot_fraction))
    commands: List[IoCommand] = []
    state = seed or 1
    for tag in range(n_ops):
        state = _xorshift(state)
        opcode = (IoOpcode.READ
                  if (state & 0xFFFF) / 65536.0 < read_fraction
                  else IoOpcode.WRITE)
        hot = ((state >> 16) & 0xFFFF) / 65536.0 < hot_ops_fraction
        draw = state >> 32
        key = draw % n_hot if hot else n_hot + draw % max(1, n_keys - n_hot)
        commands.append(IoCommand(opcode, key * sectors_per_value,
                                  sectors_per_value, tag=tag))
    return CommandListWorkload(commands, pattern="random")


def page_io_workload(n_commits: int, pages_per_commit: int = 3,
                     page_bytes: int = 4096,
                     journal_fraction: float = 0.0625,
                     span_bytes: int = 1 << 26,
                     seed: int = 0x10DB) -> CommandListWorkload:
    """Page-I/O (database-style) shape: journal appends + page flushes.

    Each commit appends one page sequentially into a journal region at
    the head of the namespace, then writes ``pages_per_commit`` dirty
    pages scattered over the data region and reads one page back (the
    B-tree descent).  The WAF pattern is ``random`` — the journal is a
    small fraction of the traffic.
    """
    if n_commits < 1 or pages_per_commit < 1:
        raise ValueError("n_commits and pages_per_commit must be >= 1")
    if not 0.0 < journal_fraction < 1.0:
        raise ValueError(f"journal_fraction must be in (0, 1), "
                         f"got {journal_fraction}")
    sectors_per_page = max(1, page_bytes // SECTOR_BYTES)
    total_pages = max(2, span_bytes // page_bytes)
    journal_pages = max(1, int(total_pages * journal_fraction))
    data_pages = total_pages - journal_pages
    commands: List[IoCommand] = []
    state = seed or 1
    tag = 0
    for commit in range(n_commits):
        journal_page = commit % journal_pages
        commands.append(IoCommand(IoOpcode.WRITE,
                                  journal_page * sectors_per_page,
                                  sectors_per_page, tag=tag))
        tag += 1
        for __ in range(pages_per_commit):
            state = _xorshift(state)
            page = journal_pages + state % data_pages
            commands.append(IoCommand(IoOpcode.WRITE,
                                      page * sectors_per_page,
                                      sectors_per_page, tag=tag))
            tag += 1
        state = _xorshift(state)
        page = journal_pages + state % data_pages
        commands.append(IoCommand(IoOpcode.READ, page * sectors_per_page,
                                  sectors_per_page, tag=tag))
        tag += 1
    return CommandListWorkload(commands, pattern="random")


# ----------------------------------------------------------------------
# Tenant specification


@dataclass(frozen=True)
class TenantSpec:
    """One initiator's declared workload, queue and QoS parameters.

    ``workload`` names a shape from :data:`TENANT_WORKLOADS`;
    ``n_commands`` bounds the stream (for ``"pageio"`` the commit loop
    stops once the bound is met).  ``weight`` is the weighted-round-robin
    share; ``queue_depth`` the usable submission-queue slots (how many
    SQEs the tenant can offer the arbiter at once).  ``rate_iops > 0``
    switches the tenant to open-loop paced arrivals starting at
    ``phase_ps``; ``0`` is closed loop (saturating).  Trace tenants set
    ``trace_path`` + ``trace_sha256`` (see :meth:`from_trace`); the
    content hash — not the path — joins the sweep fingerprint, so moving
    a trace on disk never invalidates cached results.
    """

    name: str
    workload: str = "RR"
    n_commands: int = 64
    block_bytes: int = 4096
    span_bytes: int = 1 << 26
    weight: int = 1
    queue_depth: int = 32
    rate_iops: float = 0.0
    phase_ps: int = 0
    read_fraction: float = 0.7
    seed: int = 0xC0FFEE
    trace_path: str = ""
    trace_sha256: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.workload not in TENANT_WORKLOADS:
            raise ValueError(f"unknown tenant workload {self.workload!r}; "
                             f"choose from {list(TENANT_WORKLOADS)}")
        if self.n_commands < 1:
            raise ValueError("n_commands must be >= 1")
        if self.block_bytes < SECTOR_BYTES \
                or self.block_bytes % SECTOR_BYTES:
            raise ValueError(
                f"block_bytes must be a positive multiple of {SECTOR_BYTES}")
        if self.span_bytes < self.block_bytes:
            raise ValueError("span_bytes must cover at least one block")
        if self.weight < 1:
            raise ValueError("weight must be >= 1")
        if not 1 <= self.queue_depth <= 65535:
            raise ValueError("queue_depth must be in 1..65535")
        if self.rate_iops < 0 or self.phase_ps < 0:
            raise ValueError("rate_iops and phase_ps must be >= 0")
        if self.workload == "trace" and not self.trace_path:
            raise ValueError("trace tenants need a trace_path "
                             "(use TenantSpec.from_trace)")

    @classmethod
    def from_trace(cls, name: str, path: str, **overrides: Any
                   ) -> "TenantSpec":
        """Bind a trace file, recording its content hash up front."""
        from ..core.tracereplay import sha256_file
        return cls(name=name, workload="trace", trace_path=path,
                   trace_sha256=sha256_file(path), **overrides)

    def __canonical__(self) -> Dict[str, Any]:
        """Fingerprint form: the trace's content hash replaces its path."""
        body = {
            "__dataclass__": type(self).__qualname__,
            "name": self.name, "workload": self.workload,
            "n_commands": self.n_commands, "block_bytes": self.block_bytes,
            "span_bytes": self.span_bytes, "weight": self.weight,
            "queue_depth": self.queue_depth, "rate_iops": self.rate_iops,
            "phase_ps": self.phase_ps, "read_fraction": self.read_fraction,
            "seed": self.seed, "trace_sha256": self.trace_sha256,
        }
        if not self.trace_sha256:
            body["trace_path"] = self.trace_path
        return body

    @property
    def open_loop(self) -> bool:
        return self.rate_iops > 0

    @property
    def span_sectors(self) -> int:
        return self.span_bytes // SECTOR_BYTES


def tenant_commands(spec: TenantSpec, base_lba: int = 0
                    ) -> Tuple[List[IoCommand], str]:
    """Materialize one tenant's stream, rebased into its namespace.

    Returns ``(commands, pattern)`` where ``pattern`` feeds the WAF
    model.  LBAs are generated tenant-local and shifted by ``base_lba``
    (the namespace partition start); trace LBAs are first wrapped into
    the tenant's span, keeping the access pattern (same-LBA collisions
    survive the modulo).  Open-loop tenants get fixed-interval issue
    times offset by ``phase_ps``; trace tenants keep their recorded
    inter-arrival times (rebased to ``phase_ps``) when ``rate_iops`` is
    zero.
    """
    kind = spec.workload
    if kind in IOZONE_SUITE:
        workload = IOZONE_SUITE[kind](spec.n_commands * spec.block_bytes,
                                      spec.block_bytes,
                                      span_bytes=spec.span_bytes,
                                      seed=spec.seed)
    elif kind == "mixed":
        workload = mixed_workload(spec.n_commands * spec.block_bytes,
                                  read_fraction=spec.read_fraction,
                                  block_bytes=spec.block_bytes,
                                  span_bytes=spec.span_bytes, seed=spec.seed)
    elif kind == "kv":
        workload = kv_store_workload(spec.n_commands,
                                     value_bytes=spec.block_bytes,
                                     read_fraction=spec.read_fraction,
                                     span_bytes=spec.span_bytes,
                                     seed=spec.seed)
    elif kind == "pageio":
        # Each commit emits pages_per_commit + 2 commands; round up, then
        # trim to the requested bound.
        per_commit = 5
        workload = page_io_workload(-(-spec.n_commands // per_commit),
                                    page_bytes=spec.block_bytes,
                                    span_bytes=spec.span_bytes,
                                    seed=spec.seed)
    else:  # trace
        workload = _trace_workload(spec)
    commands = workload.to_list()[:spec.n_commands]
    if spec.open_loop:
        interval_ps = int(1e12 / spec.rate_iops)
        for index, command in enumerate(commands):
            command.issue_time_ps = spec.phase_ps + index * interval_ps
    elif kind == "trace":
        first = commands[0].issue_time_ps if commands else 0
        for command in commands:
            command.issue_time_ps = (spec.phase_ps
                                     + command.issue_time_ps - first)
    if base_lba:
        for command in commands:
            command.lba += base_lba
    return commands, workload.pattern_name


def _trace_workload(spec: TenantSpec) -> CommandListWorkload:
    """Load a trace tenant's stream, wrapped into its namespace span."""
    from .traces import iter_trace, records_to_commands, wrap_to_capacity
    records = wrap_to_capacity(iter_trace(spec.trace_path),
                               spec.span_sectors)
    commands: List[IoCommand] = []
    for command in records_to_commands(records):
        commands.append(command)
        if len(commands) >= spec.n_commands:
            break
    if not commands:
        raise ValueError(f"trace {spec.trace_path!r} yielded no commands")
    return CommandListWorkload(commands, pattern="random")


# ----------------------------------------------------------------------
# Namespaces


@dataclass(frozen=True)
class NamespacePartition:
    """One tenant's LBA slice (and optional channel set) of the device."""

    base_lba: int
    sectors: int
    channels: Tuple[int, ...] = ()

    @property
    def end_lba(self) -> int:
        return self.base_lba + self.sectors


def partition_namespaces(specs: Sequence[TenantSpec],
                         n_channels: int = 0,
                         isolate_channels: bool = False
                         ) -> List[NamespacePartition]:
    """Carve the LBA space into per-tenant namespaces, in spec order.

    Partitions are contiguous (tenant i starts where i-1 ends) and sized
    by each spec's ``span_bytes``.  With ``isolate_channels`` each
    namespace additionally gets a disjoint slice of the device's
    channels (requires ``n_channels >= len(specs)``) — the configuration
    under which the noisy-neighbor matrix must measure zero.
    """
    if isolate_channels:
        if n_channels < len(specs):
            raise ValueError(
                f"cannot isolate {len(specs)} tenants on {n_channels} "
                f"channel(s)")
        per = n_channels // len(specs)
        slices = [tuple(range(i * per, (i + 1) * per))
                  for i in range(len(specs))]
        # The division remainder goes to the last tenant.
        if n_channels % len(specs):
            slices[-1] = slices[-1] + tuple(
                range(len(specs) * per, n_channels))
    else:
        slices = [() for __ in specs]
    partitions: List[NamespacePartition] = []
    base = 0
    for spec, channels in zip(specs, slices):
        partitions.append(NamespacePartition(base, spec.span_sectors,
                                             channels))
        base += spec.span_sectors
    return partitions


# ----------------------------------------------------------------------
# Runtime binding


class Tenant:
    """One initiator at runtime: spec + namespace + submission queue."""

    def __init__(self, spec: TenantSpec, partition: NamespacePartition,
                 qid: int):
        self.spec = spec
        self.partition = partition
        # A ring of depth d holds d-1 entries (one slot distinguishes
        # full from empty), so queue_depth usable slots need depth+1.
        self.queue = QueuePair(depth=spec.queue_depth + 1, qid=qid)
        self.commands, self.pattern = tenant_commands(
            spec, base_lba=partition.base_lba)

    @property
    def name(self) -> str:
        return self.spec.name


def build_tenants(specs: Sequence[TenantSpec], n_channels: int = 0,
                  isolate_channels: bool = False) -> List[Tenant]:
    """Bind specs to namespaces and queues; validates the set as a whole.

    Tenant names must be unique and the set must be uniformly closed- or
    open-loop — arbitration of a saturating stream against a paced one
    has no single admission order to model.
    """
    if not specs:
        raise ValueError("at least one tenant is required")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique, got {names}")
    open_loops = {spec.open_loop or (spec.workload == "trace")
                  for spec in specs}
    if len(open_loops) > 1:
        raise ValueError("tenants must be uniformly closed-loop or "
                         "open-loop (paced/trace) — not a mix")
    partitions = partition_namespaces(specs, n_channels=n_channels,
                                      isolate_channels=isolate_channels)
    return [Tenant(spec, partition, qid=index)
            for index, (spec, partition) in enumerate(zip(specs,
                                                          partitions))]


# ----------------------------------------------------------------------
# Arbitration


class QueueArbiter:
    """Controller-side arbitration over per-tenant submission queues.

    ``policy`` is ``"rr"`` (one SQE per non-empty queue per round, NVMe's
    default) or ``"wrr"`` (a burst of up to ``weights[i]`` per round).
    Queue IDs must be unique — a collision is a host programming error
    and is rejected up front, before any doorbell rings.
    """

    def __init__(self, queues: Sequence[QueuePair], policy: str = "rr",
                 weights: Optional[Sequence[int]] = None):
        if policy not in ARBITRATION_POLICIES:
            raise ValueError(f"unknown arbitration policy {policy!r}; "
                             f"choose from {list(ARBITRATION_POLICIES)}")
        if not queues:
            raise ValueError("at least one queue is required")
        seen: Dict[int, int] = {}
        for index, queue in enumerate(queues):
            if queue.qid in seen:
                raise ValueError(
                    f"qid collision: queues {seen[queue.qid]} and {index} "
                    f"both registered qid {queue.qid}")
            seen[queue.qid] = index
        self.queues = list(queues)
        self.policy = policy
        if weights is None:
            weights = [1] * len(queues)
        if len(weights) != len(queues):
            raise ValueError(f"{len(queues)} queues but "
                             f"{len(weights)} weights")
        if any(weight < 1 for weight in weights):
            raise ValueError("arbitration weights must be >= 1")
        self.weights = [int(weight) for weight in weights]
        self._index_of_qid = {queue.qid: index
                              for index, queue in enumerate(queues)}

    def arbitrate_round(self) -> List[int]:
        """Serve one arbitration round; returns qids in service order."""
        if self.policy == "rr":
            pending = sum(1 for queue in self.queues
                          if queue._sq_head != queue._sq_tail)
            return round_robin_arbitrate(self.queues, budget=pending)
        return weighted_round_robin_arbitrate(self.queues, self.weights)

    def merge(self, streams: Sequence[Sequence[IoCommand]]
              ) -> List[Tuple[int, IoCommand]]:
        """Interleave the streams into device admission order.

        Stream ``i`` feeds queue ``i``: commands are submitted into the
        ring as space allows (per-tenant queue depth is the backpressure
        bound) and fetched per policy round; each fetch is immediately
        completed — ring occupancy models *submission* backpressure, the
        device's own concurrency limits live downstream.  Returns
        ``[(stream_index, command), ...]`` covering every input command
        exactly once (conservation is property-tested).
        """
        if len(streams) != len(self.queues):
            raise ValueError(f"{len(self.queues)} queues but "
                             f"{len(streams)} streams")
        iterators: List[Iterator[IoCommand]] = [iter(s) for s in streams]
        fifos: List[deque] = [deque() for __ in streams]
        drained = [False] * len(streams)

        def refill(index: int) -> None:
            queue = self.queues[index]
            while not drained[index] and not queue.sq_full:
                command = next(iterators[index], None)
                if command is None:
                    drained[index] = True
                    break
                queue.submit()
                fifos[index].append(command)

        order: List[Tuple[int, IoCommand]] = []
        while True:
            for index in range(len(streams)):
                refill(index)
            served = self.arbitrate_round()
            if not served:
                break
            for qid in served:
                index = self._index_of_qid[qid]
                order.append((index, fifos[index].popleft()))
                self.queues[index].complete()
        return order


def merge_tenants(tenants: Sequence[Tenant], policy: str = "rr"
                  ) -> List[Tuple[int, IoCommand]]:
    """Arbitrate bound tenants into one admission order.

    Closed-loop sets use the raw policy interleave.  Open-loop sets are
    ordered by issue time — arbitration only matters when submissions
    coincide, so the policy interleave serves as the tie-break (the sort
    is stable).
    """
    arbiter = QueueArbiter([tenant.queue for tenant in tenants],
                           policy=policy,
                           weights=[tenant.spec.weight
                                    for tenant in tenants])
    order = arbiter.merge([tenant.commands for tenant in tenants])
    if any(tenant.spec.open_loop or tenant.spec.workload == "trace"
           for tenant in tenants):
        order.sort(key=lambda pair: pair[1].issue_time_ps)
    return order
