"""Error-correcting code subsystem.

A real binary BCH codec (GF(2^m) arithmetic, Berlekamp–Massey decoding)
plus the parametric latency models and the fixed/adaptive correction
schemes compared in the paper's wear-out experiment (Fig. 5).
"""

from .adaptive import (AdaptiveBch, CorrectionTable, EccScheme, FixedBch,
                       default_schemes)
from .bch import BchCode, BchDecodeFailure, BchParameters, inject_errors
from .galois import (GF2m, PRIMITIVE_POLYNOMIALS, poly2_degree, poly2_gcd,
                     poly2_mod, poly2_multiply)
from .latency import BchLatencyModel, DEFAULT_LATENCY

__all__ = [
    "AdaptiveBch", "BchCode", "BchDecodeFailure", "BchLatencyModel",
    "BchParameters", "CorrectionTable", "DEFAULT_LATENCY", "EccScheme",
    "FixedBch", "GF2m", "PRIMITIVE_POLYNOMIALS", "default_schemes",
    "inject_errors", "poly2_degree", "poly2_gcd", "poly2_mod",
    "poly2_multiply",
]
