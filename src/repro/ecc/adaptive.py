"""Fixed and adaptive BCH correction schemes.

The paper's Fig. 5 compares two ECC subsystems:

* a **fixed BCH** whose correction capability is pinned at the worst-case
  40 bits over the whole device lifetime, and
* an **adaptive BCH** that exploits "a static correction table that
  correlates the target correction capability with the memory page
  wear-out, measured by Program/Erase (P/E) cycles.  Every time a new page
  is written, based on the current P/E count the proper correction
  capability is selected from the table."

:class:`CorrectionTable` builds exactly that static table from the wear
model; :class:`EccScheme` is the object the channel controller consults on
every page read/write to price the encode/decode delay.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..nand.wear import ENDURANCE_SLACK, EnduranceWarning, WearModel
from .latency import BchLatencyModel, DEFAULT_LATENCY


@dataclass(frozen=True)
class CorrectionTable:
    """Static P/E-cycles → correction-capability lookup table.

    Entries are ``(pe_threshold, t)`` pairs sorted by threshold; a page at
    ``pe`` cycles uses the ``t`` of the first entry whose threshold is
    >= ``pe``.  The last entry's ``t`` applies beyond the table end.
    """

    entries: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("correction table must have at least one entry")
        thresholds = [threshold for threshold, __ in self.entries]
        if thresholds != sorted(thresholds):
            raise ValueError("correction table thresholds must be ascending")
        if any(t < 0 for __, t in self.entries):
            raise ValueError("correction capabilities must be >= 0")

    def lookup(self, pe_cycles: int) -> int:
        """Correction capability for a block at ``pe_cycles``.

        Past the table's last threshold the final ``t`` is *clamped*
        rather than extrapolated; queries more than ``ENDURANCE_SLACK``
        beyond it warn once per table instance, because the vendor table
        carries no sizing data for that regime (GC drift a few cycles
        past rated stays silent).
        """
        for threshold, t in self.entries:
            if pe_cycles <= threshold:
                return t
        last_threshold, last_t = self.entries[-1]
        if (pe_cycles > last_threshold * (1.0 + ENDURANCE_SLACK)
                and not getattr(self, "_warned_clamp", False)):
            object.__setattr__(self, "_warned_clamp", True)  # frozen dc
            warnings.warn(
                f"correction table queried at {pe_cycles} P/E cycles, "
                f"beyond its last threshold {last_threshold}; clamping "
                f"to t={last_t}", EnduranceWarning, stacklevel=2)
        return last_t

    @classmethod
    def from_wear_model(cls, wear_model: WearModel, codeword_bits: int,
                        steps: int = 10, t_max: int = 40) -> "CorrectionTable":
        """Build the static table the way a NAND vendor would: bucket the
        rated lifetime into ``steps`` equal P/E windows and size each
        bucket's ``t`` for the RBER at the *end* of the window."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        entries: List[Tuple[int, int]] = []
        for step in range(1, steps + 1):
            threshold = wear_model.rated_endurance * step // steps
            t = min(t_max, wear_model.required_correction(threshold,
                                                          codeword_bits))
            entries.append((threshold, max(1, t)))
        return cls(tuple(entries))


@dataclass(frozen=True)
class EccScheme:
    """An ECC subsystem choice: how ``t`` is selected per operation."""

    name: str
    #: Payload bytes protected by one codeword (NAND-standard 1 KiB).
    sector_bytes: int = 1024
    #: Galois field order exponent (n = 2^m - 1 must fit the codeword).
    m: int = 14
    latency: BchLatencyModel = field(default_factory=BchLatencyModel)

    def correction_for(self, pe_cycles: int) -> int:
        raise NotImplementedError

    def codeword_bits(self) -> int:
        """Approximate wire bits per codeword (payload + worst parity)."""
        return self.sector_bytes * 8 + self.m * self.worst_case_t()

    def worst_case_t(self) -> int:
        raise NotImplementedError

    def codewords_per_page(self, page_bytes: int) -> int:
        return -(-page_bytes // self.sector_bytes)

    def encode_time_ps(self, page_bytes: int, pe_cycles: int) -> int:
        """Latency to encode one page (serial engine, one codeword at a time)."""
        t = self.correction_for(pe_cycles)
        per_codeword = self.latency.encode_time_ps(self.codeword_bits(), t)
        return per_codeword * self.codewords_per_page(page_bytes)

    def decode_time_ps(self, page_bytes: int, pe_cycles: int,
                       errors_present: bool = True) -> int:
        """Latency to decode one page read at the given wear."""
        t = self.correction_for(pe_cycles)
        per_codeword = self.latency.decode_time_ps(self.codeword_bits(), t,
                                                   errors_present)
        return per_codeword * self.codewords_per_page(page_bytes)


@dataclass(frozen=True)
class FixedBch(EccScheme):
    """Worst-case BCH: ``t`` pinned regardless of wear (paper: 40 bits)."""

    name: str = "fixed-bch"
    t: int = 40

    def correction_for(self, pe_cycles: int) -> int:
        return self.t

    def worst_case_t(self) -> int:
        return self.t


@dataclass(frozen=True)
class AdaptiveBch(EccScheme):
    """Adaptive BCH driven by the static correction table."""

    name: str = "adaptive-bch"
    table: CorrectionTable = field(
        default_factory=lambda: CorrectionTable.from_wear_model(
            WearModel(), codeword_bits=1024 * 8, t_max=40))

    def correction_for(self, pe_cycles: int) -> int:
        return self.table.lookup(pe_cycles)

    def worst_case_t(self) -> int:
        return max(t for __, t in self.table.entries)


def default_schemes() -> Tuple[FixedBch, AdaptiveBch]:
    """The two schemes compared in the paper's Fig. 5."""
    return FixedBch(), AdaptiveBch()
