"""Parametric-time-delay (PTD) model of BCH codec hardware.

The paper models the ECC as a PTD block whose quality metric is its
encode/decode latency versus correction capability.  We back-annotate the
cycle counts from the structure of a standard pipelined BCH engine:

* **Encoder** — an LFSR of ``parity_bits`` stages consuming ``width`` data
  bits per cycle: latency ≈ ``codeword_bits / width`` cycles, essentially
  independent of ``t`` (matching the paper's observation that "the encoding
  operation latency ... is not substantially affected by the correction
  capability choice").
* **Decoder** —
  - syndrome stage: ``codeword_bits / width`` cycles (2t syndrome LFSRs in
    parallel),
  - Berlekamp–Massey: ``2t`` iterations of ``~t``-deep inner products →
    ``bm_factor * t^2`` cycles on a serial-multiplier array,
  - Chien search: ``codeword_bits / chien_parallelism`` cycles.

  Decode latency therefore "heavily grows with employed correction
  capability" (paper Section IV-B), dominated by the quadratic BM term plus
  a t-proportional syndrome-hardware slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernel.simtime import Clock


@dataclass(frozen=True)
class BchLatencyModel:
    """Cycle-count model of a hardware BCH codec.

    Defaults model a 250 MHz codec with a 16-bit datapath — numbers in the
    range of the adaptable BCH codecs of Fabiano et al. (MICPRO 2013),
    reference [23] of the paper.
    """

    clock_hz: float = 250e6
    datapath_bits: int = 16
    chien_parallelism: int = 16
    bm_cycles_per_t_squared: float = 12.0
    syndrome_slowdown_per_t: float = 0.01
    fixed_overhead_cycles: int = 32

    def __post_init__(self) -> None:
        if self.datapath_bits < 1 or self.chien_parallelism < 1:
            raise ValueError("datapath widths must be >= 1")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")

    @property
    def clock(self) -> Clock:
        return Clock("ecc", frequency_hz=self.clock_hz)

    def encode_cycles(self, codeword_bits: int, t: int) -> int:
        """Cycles to push a codeword through the encoder LFSR."""
        if codeword_bits < 1:
            raise ValueError("codeword_bits must be >= 1")
        streaming = -(-codeword_bits // self.datapath_bits)
        return self.fixed_overhead_cycles + streaming

    def decode_cycles(self, codeword_bits: int, t: int,
                      errors_present: bool = True) -> int:
        """Cycles to decode; grows ~quadratically with ``t``."""
        if codeword_bits < 1:
            raise ValueError("codeword_bits must be >= 1")
        if t < 0:
            raise ValueError("t must be >= 0")
        syndrome = -(-codeword_bits // self.datapath_bits)
        syndrome = int(syndrome * (1.0 + self.syndrome_slowdown_per_t * t))
        if t == 0 or not errors_present:
            # Clean codeword: syndrome stage only (all-zero early exit).
            return self.fixed_overhead_cycles + syndrome
        berlekamp = int(self.bm_cycles_per_t_squared * t * t)
        chien = -(-codeword_bits // self.chien_parallelism)
        return self.fixed_overhead_cycles + syndrome + berlekamp + chien

    def encode_time_ps(self, codeword_bits: int, t: int) -> int:
        """Encode latency in picoseconds."""
        return self.clock.cycles(self.encode_cycles(codeword_bits, t))

    def decode_time_ps(self, codeword_bits: int, t: int,
                       errors_present: bool = True) -> int:
        """Decode latency in picoseconds."""
        return self.clock.cycles(
            self.decode_cycles(codeword_bits, t, errors_present))


#: Shared default latency model.
DEFAULT_LATENCY = BchLatencyModel()
