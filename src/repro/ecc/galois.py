"""Binary-extension Galois fields GF(2^m).

This is the arithmetic substrate of the BCH codec.  Elements are integers
in ``[0, 2^m)``; multiplication uses exp/log tables built from a primitive
polynomial.  Polynomials *over GF(2)* (used for generator-polynomial
construction and encoding) are represented as Python integers whose bit ``i``
is the coefficient of ``x^i`` — carry-less arithmetic then maps onto shifts
and XORs.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

#: Standard primitive polynomials (bit i = coefficient of x^i).
PRIMITIVE_POLYNOMIALS: Dict[int, int] = {
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
    14: 0b100010001000011,
}


class GF2m:
    """GF(2^m) with exp/log tables and vectorized helpers."""

    def __init__(self, m: int, primitive_poly: int = 0):
        if m not in PRIMITIVE_POLYNOMIALS and not primitive_poly:
            raise ValueError(f"no built-in primitive polynomial for m={m}")
        self.m = m
        self.order = 1 << m
        self.n = self.order - 1  # multiplicative group order
        self.primitive_poly = primitive_poly or PRIMITIVE_POLYNOMIALS[m]
        # exp table doubled so products of logs index without a modulo.
        exp = np.zeros(2 * self.n, dtype=np.int64)
        log = np.zeros(self.order, dtype=np.int64)
        value = 1
        for power in range(self.n):
            exp[power] = value
            log[value] = power
            value <<= 1
            if value & self.order:
                value ^= self.primitive_poly
        if value != 1:
            raise ValueError(
                f"polynomial {self.primitive_poly:#x} is not primitive for m={m}")
        exp[self.n:] = exp[:self.n]
        self.exp = exp
        self.log = log

    def multiply(self, a: int, b: int) -> int:
        """Field product of two elements."""
        if a == 0 or b == 0:
            return 0
        return int(self.exp[self.log[a] + self.log[b]])

    def inverse(self, a: int) -> int:
        """Multiplicative inverse; zero has none."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        return int(self.exp[self.n - self.log[a]])

    def divide(self, a: int, b: int) -> int:
        """Field quotient a / b."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return int(self.exp[(self.log[a] - self.log[b]) % self.n])

    def power(self, a: int, exponent: int) -> int:
        """a raised to an arbitrary (possibly negative) integer power."""
        if a == 0:
            if exponent <= 0:
                raise ZeroDivisionError("0 cannot be raised to a non-positive power")
            return 0
        return int(self.exp[(self.log[a] * exponent) % self.n])

    def alpha_power(self, exponent: int) -> int:
        """α^exponent for the primitive element α."""
        return int(self.exp[exponent % self.n])

    def poly_eval(self, coefficients: List[int], x: int) -> int:
        """Evaluate a GF(2^m)[x] polynomial (coefficients low-to-high) at x."""
        result = 0
        for coefficient in reversed(coefficients):
            result = self.multiply(result, x) ^ coefficient
        return result

    def cyclotomic_coset(self, start: int) -> List[int]:
        """The 2-cyclotomic coset of ``start`` modulo ``2^m - 1``."""
        coset = []
        value = start % self.n
        while value not in coset:
            coset.append(value)
            value = (value * 2) % self.n
        return coset

    def minimal_polynomial(self, element_power: int) -> int:
        """Minimal polynomial (over GF(2)) of α^element_power.

        Returned as a GF(2) polynomial bitmask.  Computed as
        ``prod (x - α^c)`` over the cyclotomic coset; the result always has
        0/1 coefficients.
        """
        coset = self.cyclotomic_coset(element_power)
        # Polynomial over GF(2^m), coefficients low-to-high; start with 1.
        poly: List[int] = [1]
        for power in coset:
            root = self.alpha_power(power)
            # poly *= (x + root)
            shifted = [0] + poly                       # poly * x
            scaled = [self.multiply(c, root) for c in poly] + [0]
            poly = [a ^ b for a, b in zip(shifted, scaled)]
        mask = 0
        for degree, coefficient in enumerate(poly):
            if coefficient not in (0, 1):
                raise ArithmeticError(
                    "minimal polynomial has non-binary coefficient "
                    f"{coefficient} — field tables are corrupt")
            if coefficient:
                mask |= 1 << degree
        return mask


# ----------------------------------------------------------------------
# GF(2)[x] helpers on integer bitmasks
# ----------------------------------------------------------------------
def poly2_degree(poly: int) -> int:
    """Degree of a GF(2) polynomial bitmask (-1 for the zero polynomial)."""
    return poly.bit_length() - 1


def poly2_multiply(a: int, b: int) -> int:
    """Carry-less product of two GF(2) polynomials."""
    result = 0
    shift = 0
    while b:
        if b & 1:
            result ^= a << shift
        b >>= 1
        shift += 1
    return result


def poly2_mod(dividend: int, divisor: int) -> int:
    """Remainder of GF(2) polynomial division."""
    if divisor == 0:
        raise ZeroDivisionError("polynomial division by zero")
    divisor_degree = poly2_degree(divisor)
    while True:
        dividend_degree = poly2_degree(dividend)
        if dividend_degree < divisor_degree:
            return dividend
        dividend ^= divisor << (dividend_degree - divisor_degree)


def poly2_gcd(a: int, b: int) -> int:
    """Greatest common divisor in GF(2)[x]."""
    while b:
        a, b = b, poly2_mod(a, b)
    return a
