"""A real binary BCH codec (encode + algebraic decode).

The paper treats the ECC block as a parametric-delay component, but its
adaptive-BCH experiment (Fig. 5) hinges on how correction capability ``t``
maps to codec work.  We implement the actual codec so that (a) the latency
model can be back-annotated from first principles (syndrome count,
Berlekamp–Massey iterations, Chien search length) and (b) the platform can
later be refined into functional simulation, exactly the refinement path
SSDExplorer advertises.

Pipeline: systematic encoding by polynomial division; decoding via
syndromes → Berlekamp–Massey → Chien search.  Codewords are ``bytes``;
bit ``i`` of the codeword polynomial lives at byte ``i // 8``, LSB first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .galois import GF2m, poly2_degree, poly2_mod, poly2_multiply


class BchDecodeFailure(Exception):
    """The decoder detected more errors than it can correct."""


@dataclass(frozen=True)
class BchParameters:
    """Summary of a constructed code."""

    m: int
    n: int            # codeword bits (2^m - 1, before shortening)
    k: int            # data bits
    t: int            # designed correction capability
    parity_bits: int


class BchCode:
    """Binary BCH code over GF(2^m) with correction capability ``t``.

    Supports *shortened* operation: any payload up to ``k`` bits can be
    encoded; the missing high-order data bits are implicitly zero (the
    standard trick NAND controllers use to fit 1 KiB sectors into
    BCH(8191, ...) codes).
    """

    def __init__(self, m: int, t: int):
        if t < 1:
            raise ValueError(f"correction capability must be >= 1, got {t}")
        self.field = GF2m(m)
        self.m = m
        self.t = t
        self.n = self.field.n
        generator = 1
        seen_cosets = set()
        for power in range(1, 2 * t + 1):
            coset = tuple(sorted(self.field.cyclotomic_coset(power)))
            if coset in seen_cosets:
                continue
            seen_cosets.add(coset)
            generator = poly2_multiply(generator,
                                       self.field.minimal_polynomial(power))
        self.generator = generator
        self.parity_bits = poly2_degree(generator)
        self.k = self.n - self.parity_bits
        if self.k <= 0:
            raise ValueError(
                f"BCH(m={m}, t={t}) leaves no room for data (k={self.k})")

    @property
    def parameters(self) -> BchParameters:
        return BchParameters(self.m, self.n, self.k, self.t, self.parity_bits)

    # ------------------------------------------------------------------
    # Bit packing helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _bytes_to_int(data: bytes) -> int:
        return int.from_bytes(data, "little")

    @staticmethod
    def _int_to_bytes(value: int, nbytes: int) -> bytes:
        return value.to_bytes(nbytes, "little")

    # ------------------------------------------------------------------
    # Encode
    # ------------------------------------------------------------------
    def encode(self, data: bytes) -> bytes:
        """Return ``data`` followed by the parity bytes.

        ``data`` may be any length whose bit count fits in ``k``.
        """
        data_bits = len(data) * 8
        if data_bits > self.k:
            raise ValueError(
                f"payload of {data_bits} bits exceeds k={self.k} for "
                f"BCH(m={self.m}, t={self.t})")
        message = self._bytes_to_int(data)
        parity = poly2_mod(message << self.parity_bits, self.generator)
        parity_bytes = (self.parity_bits + 7) // 8
        return data + self._int_to_bytes(parity, parity_bytes)

    def codeword_bits(self, data_len: int) -> int:
        """Total bits on the wire for a ``data_len``-byte payload."""
        return data_len * 8 + self.parity_bits

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def decode(self, codeword: bytes, data_len: int) -> Tuple[bytes, int]:
        """Correct ``codeword`` in place and return ``(data, n_corrected)``.

        ``data_len`` is the payload byte count used at encode time.
        Raises :class:`BchDecodeFailure` if more than ``t`` errors are
        present (detected via locator-degree or Chien-root mismatch).
        """
        parity_bytes = (self.parity_bits + 7) // 8
        if len(codeword) != data_len + parity_bytes:
            raise ValueError(
                f"codeword length {len(codeword)} does not match payload "
                f"{data_len} + parity {parity_bytes}")
        data_bits = data_len * 8
        # Received polynomial: parity occupies the low-order bit positions,
        # data sits above it (matching encode's `message << parity_bits`).
        parity = self._bytes_to_int(codeword[data_len:]) & ((1 << self.parity_bits) - 1)
        message = self._bytes_to_int(codeword[:data_len])
        received = (message << self.parity_bits) | parity

        syndromes = self._syndromes(received, data_bits + self.parity_bits)
        if not any(syndromes):
            return codeword[:data_len], 0

        locator = self._berlekamp_massey(syndromes)
        error_count = len(locator) - 1
        if error_count > self.t:
            raise BchDecodeFailure(
                f"locator degree {error_count} exceeds t={self.t}")
        positions = self._chien_search(locator)
        if len(positions) != error_count:
            raise BchDecodeFailure(
                f"found {len(positions)} roots for degree-{error_count} locator")
        for position in positions:
            if position >= data_bits + self.parity_bits:
                raise BchDecodeFailure(
                    f"error position {position} lies in the shortened region")
            received ^= 1 << position

        corrected_message = received >> self.parity_bits
        return self._int_to_bytes(corrected_message, data_len), error_count

    # ------------------------------------------------------------------
    # Decoder stages
    # ------------------------------------------------------------------
    def _syndromes(self, received: int, total_bits: int) -> List[int]:
        """S_j = r(α^j) for j = 1..2t, vectorized over set bit positions."""
        positions = []
        value = received
        index = 0
        while value:
            chunk = value & 0xFFFFFFFFFFFFFFFF
            while chunk:
                low = chunk & -chunk
                positions.append(index + low.bit_length() - 1)
                chunk ^= low
            value >>= 64
            index += 64
        if not positions:
            return [0] * (2 * self.t)
        pos = np.asarray(positions, dtype=np.int64)
        exp = self.field.exp
        syndromes = []
        for j in range(1, 2 * self.t + 1):
            terms = exp[(pos * j) % self.n]
            syndromes.append(int(np.bitwise_xor.reduce(terms)))
        return syndromes

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Return the error-locator polynomial (coefficients low-to-high)."""
        field = self.field
        locator = [1]
        previous = [1]
        previous_discrepancy = 1
        shift = 1
        for step, syndrome in enumerate(syndromes):
            discrepancy = syndrome
            for i in range(1, len(locator)):
                if i <= step:
                    discrepancy ^= field.multiply(locator[i],
                                                  syndromes[step - i])
            if discrepancy == 0:
                shift += 1
                continue
            scale = field.divide(discrepancy, previous_discrepancy)
            correction = [0] * shift + [field.multiply(scale, c)
                                        for c in previous]
            updated = [a ^ b for a, b in
                       zip(locator + [0] * (len(correction) - len(locator)),
                           correction + [0] * (len(locator) - len(correction)))]
            if 2 * (len(locator) - 1) <= step:
                previous = locator
                previous_discrepancy = discrepancy
                shift = 1
            else:
                shift += 1
            locator = updated
        while len(locator) > 1 and locator[-1] == 0:
            locator.pop()
        return locator

    def _chien_search(self, locator: List[int]) -> List[int]:
        """Return error bit positions (roots of the locator, inverted)."""
        field = self.field
        degree = len(locator) - 1
        if degree == 0:
            return []
        exp, log, n = field.exp, field.log, field.n
        i_values = np.arange(n, dtype=np.int64)
        accumulator = np.full(n, locator[0], dtype=np.int64)
        for power in range(1, degree + 1):
            coefficient = locator[power]
            if coefficient == 0:
                continue
            # coefficient * (α^i)^power for all i
            logs = (log[coefficient] + i_values * power) % n
            accumulator ^= exp[logs]
        roots = np.nonzero(accumulator == 0)[0]
        # Root α^i ⇒ error locator X_l = α^{-i} ⇒ bit position n - i (mod n).
        return sorted(int((n - i) % n) for i in roots)


def inject_errors(codeword: bytes, positions: List[int]) -> bytes:
    """Flip the given bit positions of a codeword (test/bench helper)."""
    buffer = bytearray(codeword)
    for position in positions:
        if not 0 <= position < len(buffer) * 8:
            raise ValueError(f"bit position {position} out of range")
        buffer[position // 8] ^= 1 << (position % 8)
    return bytes(buffer)
