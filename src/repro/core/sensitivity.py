"""Parameter sensitivity analysis.

The FGDSE workflow is not only about discrete design points: a designer
also needs to know *which* component parameter binds the architecture
("identification of microarchitectural bottlenecks", paper abstract).
:func:`sweep_parameter` measures throughput as one knob varies, and
:func:`bottleneck_report` ranks component utilizations for a single run —
the two primitives behind a breakdown-style analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..host.workload import Workload
from ..ssd.architecture import SsdArchitecture
from ..ssd.metrics import RunResult
from ..ssd.scenarios import measure

ArchFactory = Callable[[Any], SsdArchitecture]


@dataclass
class SensitivityPoint:
    """One parameter value's measurement."""

    value: Any
    result: RunResult

    @property
    def mbps(self) -> float:
        return self.result.sustained_mbps


@dataclass
class SensitivityCurve:
    """A full parameter sweep."""

    parameter: str
    points: List[SensitivityPoint]

    def series(self) -> List[Tuple[Any, float]]:
        return [(point.value, point.mbps) for point in self.points]

    def elasticity(self) -> float:
        """Relative throughput change per relative parameter change
        between the first and last points (log-free approximation).

        Near 1.0 the parameter is the binding constraint; near 0.0 the
        architecture is insensitive to it.
        """
        if len(self.points) < 2:
            raise ValueError("elasticity needs at least two points")
        first, last = self.points[0], self.points[-1]
        try:
            value_change = (float(last.value) - float(first.value)) \
                / float(first.value)
        except (TypeError, ValueError):
            raise ValueError("elasticity needs numeric parameter values")
        if value_change == 0:
            raise ValueError("parameter did not change across the sweep")
        if first.mbps == 0:
            return 0.0
        throughput_change = (last.mbps - first.mbps) / first.mbps
        return throughput_change / value_change

    def saturation_value(self, tolerance: float = 0.03) -> Optional[Any]:
        """First parameter value beyond which throughput stops improving
        (within ``tolerance``); None if it never saturates."""
        best = max(point.mbps for point in self.points)
        for point in self.points:
            if point.mbps >= (1.0 - tolerance) * best:
                return point.value
        return None


def sweep_parameter(parameter: str, values: Sequence[Any],
                    arch_factory: ArchFactory, workload: Workload,
                    warm_start: bool = False,
                    max_commands: Optional[int] = None) -> SensitivityCurve:
    """Measure the workload at each parameter value.

    ``arch_factory`` maps a parameter value to a full architecture, so any
    knob — ONFI speed, tPROG, queue depth, ECC strength — can be swept
    without this module knowing its type.
    """
    points = []
    for value in values:
        result = measure(arch_factory(value), workload,
                         warm_start=warm_start, max_commands=max_commands,
                         label=f"{parameter}={value}")
        points.append(SensitivityPoint(value=value, result=result))
    return SensitivityCurve(parameter=parameter, points=points)


def bottleneck_report(result: RunResult) -> List[Tuple[str, float]]:
    """Component utilizations, busiest first — the breakdown that tells a
    designer where the next dollar should go."""
    return sorted(result.utilizations.items(), key=lambda item: -item[1])


def render_sensitivity_table(curve: SensitivityCurve) -> str:
    """Fixed-width rendering of a sweep."""
    header = curve.parameter.ljust(16) + "MB/s".rjust(10)
    lines = [header, "-" * len(header)]
    for value, mbps in curve.series():
        lines.append(f"{str(value):<16}{mbps:10.1f}")
    return "\n".join(lines)
