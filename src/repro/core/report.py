"""Plain-text report rendering for experiment outputs."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from ..ssd.metrics import json_safe
from ..ssd.scenarios import BreakdownRow
from .speed import SpeedSample


def render_json(payload, indent: int = 2) -> str:
    """Strict-JSON dump of an experiment payload.

    Non-finite floats (the min/max of an empty accumulator surfaces as
    ``inf``) are sanitized to ``null`` first, and ``allow_nan=False``
    guarantees the output never contains the ``Infinity``/``NaN`` tokens
    that are outside the JSON grammar.
    """
    return json.dumps(json_safe(payload), indent=indent, sort_keys=True,
                      allow_nan=False)


def render_breakdown_table(rows: Dict[str, BreakdownRow]) -> str:
    """Render a Fig. 3/4 style table: one row per configuration."""
    columns = ["DDR+FLASH", "SSD cache", "SSD no cache", "HOST ideal",
               "HOST+DDR"]
    header = "Config".ljust(8) + "".join(c.rjust(14) for c in columns)
    lines = [header, "-" * len(header)]
    for name, row in rows.items():
        values = row.as_dict()
        lines.append(name.ljust(8) + "".join(
            f"{values[c]:14.1f}" for c in columns))
    return "\n".join(lines)


def render_series_table(series: Dict[str, List[Tuple[float, float]]],
                        x_label: str = "endurance") -> str:
    """Render Fig. 5 style series: one column per series."""
    names = list(series)
    xs = [x for x, __ in series[names[0]]]
    header = x_label.ljust(12) + "".join(name.rjust(16) for name in names)
    lines = [header, "-" * len(header)]
    for index, x in enumerate(xs):
        cells = "".join(f"{series[name][index][1]:16.1f}" for name in names)
        lines.append(f"{x:<12.2f}" + cells)
    return "\n".join(lines)


def render_speed_table(samples: Dict[str, SpeedSample]) -> str:
    """Render Fig. 6: KCPS per configuration."""
    header = "Config".ljust(8) + "KCPS".rjust(12) + "events/s".rjust(14) \
        + "wall s".rjust(10)
    lines = [header, "-" * len(header)]
    for name, sample in samples.items():
        lines.append(name.ljust(8) + f"{sample.kcps:12.1f}"
                     + f"{sample.events_per_second:14.0f}"
                     + f"{sample.wall_seconds:10.2f}")
    return "\n".join(lines)


def render_validation_table(points: Dict) -> str:
    """Render Fig. 2: simulator vs reference device."""
    header = ("Workload".ljust(10) + "SSDExplorer".rjust(14)
              + "Reference".rjust(14) + "Error %".rjust(10))
    lines = [header, "-" * len(header)]
    for name, point in points.items():
        lines.append(name.ljust(10)
                     + f"{point.simulated_mbps:14.1f}"
                     + f"{point.reference_mbps:14.1f}"
                     + f"{point.relative_error * 100:10.2f}")
    return "\n".join(lines)
