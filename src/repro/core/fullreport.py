"""One-shot reproduction report.

Runs every experiment of the paper's evaluation at a chosen scale and
renders a single markdown document — the live counterpart of the
hand-curated EXPERIMENTS.md.  Used by ``python -m repro report``.
"""

from __future__ import annotations

import time
from typing import List, Optional

from .experiments import (fig3_profile, fig3_sweep, fig4_sweep,
                          fig5_wearout_sweep, table3_configs)
from .explorer import ResourceCostModel
from .features import render_table, verify_ssdexplorer_column
from .report import (render_breakdown_table, render_series_table,
                     render_speed_table, render_validation_table)
from .speed import speed_sweep
from .validation import run_validation


def _render_ftl_section(repo_root: str = ".") -> List[str]:
    """The FTL scheme-zoo trade-off table on the bundled sample trace."""
    import os

    from .ftlsweep import analytic_waf_check, ftl_sweep, ftl_sweep_table
    from .goldens import SAMPLE_TRACE
    from .sweep import SweepRunner
    from .tracereplay import TraceWorkload
    path = os.path.join(repo_root, SAMPLE_TRACE)
    if not os.path.exists(path):
        return [f"## FTL schemes under a DRAM budget", "",
                f"_skipped: sample trace {path!r} not found_", ""]
    payloads = ftl_sweep(TraceWorkload.from_file(path),
                         schemes=["pagemap", "groupmap", "dftl"],
                         runner=SweepRunner(workers=1))
    rows = ftl_sweep_table(payloads)
    lines = ["| point | scheme | WAF | MB/s | mean us | p99 us | "
             "table B | DRAM B | cached |",
             "|---|---|---|---|---|---|---|---|---|"]
    for row in rows:
        lines.append(
            f"| {row['point']} | {row['scheme']} | {row['waf']:.3f} | "
            f"{row['throughput_mbps']:.2f} | "
            f"{row['mean_latency_us']:.1f} | "
            f"{row['p99_latency_us']:.1f} | {row['table_bytes']} | "
            f"{row['dram_bytes']} | {row['cached_fraction']:.2f} |")
    analytic = analytic_waf_check()
    verdict = "PASS" if analytic["within_bound"] else "FAIL"
    return (["## FTL schemes under a DRAM budget (sample trace)", ""]
            + lines
            + ["",
               f"Analytic cross-check: measured page-map WAF "
               f"{analytic['measured_waf']:.3f} vs greedy simulation "
               f"{analytic['greedy_sim_waf']:.3f} "
               f"({analytic['deviation_vs_greedy']:.1%} deviation), LRU "
               f"closed form {analytic['lru_analytic_waf']:.3f} — "
               f"{verdict}.", ""])


def _render_tenants_section() -> List[str]:
    """Multi-tenant serving: per-tenant tails and worst-neighbor column."""
    from .sweep import SweepRunner
    from .tenantsweep import tenant_sweep, tenant_sweep_table
    payloads = tenant_sweep(counts=[1, 3], runner=SweepRunner(workers=1))
    rows = tenant_sweep_table(payloads)
    lines = ["| point | tenant | workload | share d/a | p50 us | p99 us | "
             "p99.9 us | p99.99 us | worst nbr |",
             "|---|---|---|---|---|---|---|---|---|"]
    for row in rows:
        worst = row["worst_neighbor_inflation"]
        lines.append(
            f"| {row['point']} | {row['tenant']} | {row['workload']} | "
            f"{row['demanded_share']:.2f}/{row['achieved_share']:.2f} | "
            f"{row['p50_latency_us']:.1f} | {row['p99_latency_us']:.1f} | "
            f"{row['p999_latency_us']:.1f} | "
            f"{row['p9999_latency_us']:.1f} | "
            + (f"{worst:+.3f} |" if worst is not None else "- |"))
    return (["## Multi-tenant serving — arbitration and tail QoS", ""]
            + lines
            + ["",
               "Tail percentiles come from log-binned latency histograms; "
               "`worst nbr` is the tenant's largest pairwise mean-latency "
               "inflation vs its solo baseline (the noisy-neighbor "
               "matrix's worst column).", ""])


def generate_report(n_commands: int = 800,
                    configs: Optional[List[str]] = None,
                    include_fig4: bool = True,
                    include_profile: bool = True,
                    include_reliability: bool = True,
                    include_ftl: bool = True,
                    include_tenants: bool = True,
                    reliability_replicas: int = 8) -> str:
    """Run the evaluation and return the report as markdown text.

    ``n_commands`` scales every workload; the default trades some
    steady-state fidelity for a few minutes of runtime.  ``configs``
    restricts the Table II sweeps.  ``include_profile`` adds a span-
    observability section that re-runs one Fig. 3 point with the stage
    breakdown on, explaining the bar it contributes to.
    ``include_reliability`` adds a small Monte-Carlo reliability
    campaign (``reliability_replicas`` seeded fault trials per fig-faults
    wear level) with Wilson-CI estimates and the
    perf-vs-reliability-vs-spares frontier.  ``include_ftl`` adds the
    real-FTL scheme-zoo trade-off table on the bundled sample trace
    (skipped automatically when the trace is not on disk).
    ``include_tenants`` adds the multi-tenant serving section: per-tenant
    tail percentiles, achieved-vs-demanded shares and the worst
    noisy-neighbor inflation per tenant.
    """
    started = time.perf_counter()
    sections: List[str] = [
        "# SSDExplorer reproduction — generated report", "",
        f"Workload scale: {n_commands} commands per run.", "",
    ]

    sections += ["## Table I — feature matrix", "", "```",
                 render_table(), "```", ""]
    checks = verify_ssdexplorer_column()
    failing = [name for name, ok in checks.items() if not ok]
    sections.append(f"Capability checks: {len(checks) - len(failing)}"
                    f"/{len(checks)} pass"
                    + (f" — MISSING: {failing}" if failing else "") + "\n")

    sections += ["## Fig. 2 — validation vs reference device", "", "```",
                 render_validation_table(
                     run_validation(n_commands=max(1600, n_commands))),
                 "```", ""]

    fig3 = fig3_sweep(n_commands=n_commands, configs=configs)
    sections += ["## Fig. 3 — sequential write, SATA II", "", "```",
                 render_breakdown_table(fig3), "```", ""]
    host_line = next(iter(fig3.values())).host_ddr_mbps
    saturating = sorted(name for name, row in fig3.items()
                        if row.ssd_cache_mbps >= 0.97 * host_line)
    cost = ResourceCostModel()
    from .experiments import table2_configs
    table2 = table2_configs()
    optimal = min(saturating,
                  key=lambda name: cost.cost(table2[name])) \
        if saturating else None
    sections.append(f"Saturating (cache policy): {saturating}; "
                    f"optimal design point: {optimal}\n")

    if include_profile:
        from ..obs import render_bottleneck_report, render_stage_table
        profile_config = (configs[0] if configs else "C1")
        __, recorder, __timelines = fig3_profile(
            config=profile_config, n_commands=max(200, n_commands // 4))
        sections += [f"## Fig. 3 bottleneck breakdown ({profile_config}, "
                     "cache policy)", "", "```",
                     render_stage_table(recorder.breakdown()), "",
                     render_bottleneck_report(recorder), "```", ""]

    if include_fig4:
        fig4 = fig4_sweep(n_commands=n_commands, configs=configs)
        sections += ["## Fig. 4 — sequential write, PCIe Gen2 x8 + NVMe",
                     "", "```", render_breakdown_table(fig4), "```", ""]

    series = fig5_wearout_sweep(fractions=[0.0, 0.25, 0.5, 0.75, 1.0],
                                n_commands=max(200, n_commands // 4))
    sections += ["## Fig. 5 — throughput over NAND wear-out", "", "```",
                 render_series_table(series), "```", ""]

    samples = speed_sweep(table3_configs(),
                          n_commands=max(100, n_commands // 4))
    sections += ["## Fig. 6 — simulation speed (KCPS)", "", "```",
                 render_speed_table(samples), "```", ""]

    if include_ftl:
        sections += _render_ftl_section()

    if include_tenants:
        sections += _render_tenants_section()

    if include_reliability:
        from .reliability import ReliabilityGrid, run_reliability_campaign
        outcome = run_reliability_campaign(
            grid=ReliabilityGrid(n_commands=max(60, n_commands // 8)),
            replicas=reliability_replicas)
        sections += ["## Reliability — Monte-Carlo fault campaign "
                     f"({reliability_replicas} replicas/cell, 95% "
                     "Wilson CIs)", "", "```", outcome.format(), "```", ""]

    elapsed = time.perf_counter() - started
    sections.append(f"_Report generated in {elapsed:.1f} s._")
    return "\n".join(sections) + "\n"
