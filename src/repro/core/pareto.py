"""Pareto kernels shared by the explorer, the result store and the
adaptive campaign search.

Every selection here follows one convention, locked down by
``tests/core/test_pareto_properties.py``: ties break by *name*, so the
answer is invariant under permutation of the input — the property that
makes parallel sweeps and multi-worker campaigns (whose completion order
is nondeterministic) safe to rank.

The kernels are generic over item type via ``cost``/``value``/``name``
key functions; :class:`ParetoEntry` is the plain (name, cost, value)
triple the SQLite store and the adaptive promoter trade in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

Item = TypeVar("Item")
Key = Callable[["Item"], float]
Name = Callable[["Item"], str]


@dataclass(frozen=True)
class ParetoEntry:
    """One ranked point: minimize ``cost``, maximize ``value``."""

    name: str
    cost: float
    value: float


def _entry_cost(entry: ParetoEntry) -> float:
    return entry.cost


def _entry_value(entry: ParetoEntry) -> float:
    return entry.value


def _entry_name(entry: ParetoEntry) -> str:
    return entry.name


def pareto_frontier(items: Iterable[Item], cost: Key, value: Key,
                    name: Name) -> List[Item]:
    """Non-dominated items in the (cost down, value up) plane.

    An item is dominated if another is at least as cheap *and* at least
    as valuable (strictly better in one dimension).  Returned sorted by
    ascending cost with strictly increasing value — the curve a designer
    trades along when no single target is fixed.
    """
    frontier: List[Item] = []
    for item in sorted(items, key=lambda it: (cost(it), -value(it),
                                              name(it))):
        if not frontier or value(item) > value(frontier[-1]):
            frontier.append(item)
    return frontier


def cheapest_within(items: Sequence[Item], cost: Key, value: Key,
                    name: Name, fraction: float) -> Item:
    """Cheapest item whose value is within ``fraction`` of the best."""
    if not items:
        raise ValueError("no items to rank")
    best = max(value(item) for item in items)
    near = [item for item in items if value(item) >= fraction * best]
    return min(near, key=lambda it: (cost(it), name(it)))


def best_item(items: Sequence[Item], cost: Key, value: Key,
              name: Name) -> Item:
    """Highest-value item; ties break by (cost, name)."""
    if not items:
        raise ValueError("no items to rank")
    return min(items, key=lambda it: (-value(it), cost(it), name(it)))


def multi_frontier(items: Iterable[Item], objectives: Sequence[Key],
                   name: Name) -> List[Item]:
    """Non-dominated items under N objectives, all maximized.

    Generalizes :func:`pareto_frontier` beyond the (cost, value) plane —
    minimize a dimension by negating its key.  An item is dominated if
    another scores at least as high on every objective and strictly
    higher on at least one; groups of exact coordinate duplicates keep
    only their name-minimal member.  Those rules make the 2-objective
    case set-identical to ``pareto_frontier(cost=-obj0, value=obj1)``
    (locked by tests), and the result invariant under permutation of the
    input.  Returned sorted by name.
    """
    if not objectives:
        raise ValueError("multi_frontier needs at least one objective")
    pool = sorted(items, key=name)
    scores = [tuple(key(item) for key in objectives) for item in pool]
    kept: List[Item] = []
    for i, item in enumerate(pool):
        mine = scores[i]
        dominated = False
        for j, other in enumerate(scores):
            if j == i:
                continue
            if all(o >= m for o, m in zip(other, mine)) and (
                    other != mine or j < i):
                dominated = True
                break
        if not dominated:
            kept.append(item)
    return kept


# ----------------------------------------------------------------------
# ParetoEntry conveniences (the store / promoter work on entries)


def entry_frontier(entries: Iterable[ParetoEntry]) -> List[ParetoEntry]:
    return pareto_frontier(entries, _entry_cost, _entry_value, _entry_name)


def entry_cheapest_within(entries: Sequence[ParetoEntry],
                          fraction: float) -> ParetoEntry:
    return cheapest_within(entries, _entry_cost, _entry_value, _entry_name,
                           fraction)


def entry_best(entries: Sequence[ParetoEntry]) -> ParetoEntry:
    return best_item(entries, _entry_cost, _entry_value, _entry_name)


def frontier_value_at(frontier: Sequence[ParetoEntry],
                      budget: float) -> Optional[float]:
    """Best frontier value achievable at cost <= ``budget``.

    ``frontier`` must come from :func:`entry_frontier` (ascending cost,
    ascending value), so the answer is the value of the most expensive
    frontier entry still within budget; ``None`` if even the cheapest
    frontier entry exceeds it.
    """
    best: Optional[float] = None
    for entry in frontier:
        if entry.cost > budget:
            break
        best = entry.value
    return best
