"""Monte-Carlo reliability campaigns at statistical scale (ROADMAP 5).

One seeded fault trial per configuration (``repro faults``) demonstrates
the recovery tiers; it says nothing about UBER with confidence.  This
module expands each architecture cell of the fig-faults configuration
into N *replicas* — identical except for the fault-plan seed — runs them
through the campaign engine (so replicas lease, publish, crash-resume
and cache exactly like any other point), and pools the per-replica
counts into estimators with 95% Wilson confidence intervals.

Determinism is the headline guarantee, built from three rules:

* **Replica seeding**: the fault seed of replica ``i`` of cell ``c`` is
  ``BLAKE2b("reliability:<campaign_seed>:<cell>:<i>")`` — a pure
  function of ``(campaign_seed, cell, replica)``, independent of worker
  count, scheduling and batch interleaving.
* **Pooled counts**: estimators sum integer counts over replicas in
  sorted-name order, so the same payload set always produces the same
  bytes.
* **Barrier-synchronized batches**: the sequential stopping rule only
  inspects estimates *between* batches (mirroring
  :mod:`repro.core.adaptive`'s budgeted promotion), so the schedule is a
  deterministic function of published payloads — a SIGKILLed campaign
  resumes into the identical schedule and replays finished replicas from
  cache.

The result: ``repro reliability run`` output is byte-identical across
``workers=1``, ``workers=4``, multi-process drains and kill -9 resume,
locked by ``tests/core/test_reliability.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..faults.outcomes import OUTCOME_ORDER
from ..host import sequential_read, sequential_write
from .campaign import Campaign
from .experiments import FAULT_CAMPAIGN_FRACTIONS, faults_architecture
from .pareto import multi_frontier
from .sweep import SweepPoint, SweepResult, SweepRunner

#: Name prefix of every reliability replica point — the namespace that
#: lets replicas share a campaign directory with ordinary points.
REL_PREFIX = "rel/"

#: Two-sided 95% normal quantile used by every Wilson interval here.
Z_95 = 1.959963984540054

#: Stopping-rule metrics: estimate attribute -> CI attribute.
STOPPING_METRICS = ("failed_rate", "uber")


def wilson_interval(successes: int, trials: int,
                    z: float = Z_95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the Wald interval because it stays inside [0, 1] and
    behaves at the extremes reliability work lives in (0 failures out of
    N, N out of N).  ``trials == 0`` returns the vacuous ``(0.0, 1.0)``.
    """
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, trials], got "
                         f"{successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denominator
    margin = (z / denominator) * math.sqrt(
        p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
    # At the extremes the bound is exactly the point estimate (the
    # algebra collapses to 0 and 1); pin it so rounding can't push the
    # estimate outside its own interval.
    low = 0.0 if successes == 0 else max(0.0, center - margin)
    high = 1.0 if successes == trials else min(1.0, center + margin)
    return (low, high)


def replica_seed(campaign_seed: int, cell_name: str, replica: int) -> int:
    """Fault-plan seed of one replica: hash of (campaign seed, cell,
    replica index) — the rule that keeps the schedule independent of
    worker count and replica interleaving."""
    digest = hashlib.blake2b(
        f"reliability:{campaign_seed}:{cell_name}:{replica}".encode("utf-8"),
        digest_size=8)
    return int.from_bytes(digest.digest(), "big")


@dataclass(frozen=True)
class ReliabilityCell:
    """One architecture/workload cell a replica population estimates."""

    kind: str          # "write" or "read"
    fraction: float    # normalized endurance (wear level)
    spares: int        # spare blocks per plane

    @property
    def name(self) -> str:
        return f"{REL_PREFIX}{self.kind}/{self.fraction:g}/s{self.spares}"

    @classmethod
    def parse(cls, cell_name: str) -> "ReliabilityCell":
        parts = cell_name.split("/")
        if (len(parts) != 4 or f"{parts[0]}/" != REL_PREFIX
                or not parts[3].startswith("s")):
            raise ValueError(f"not a reliability cell name: {cell_name!r}")
        return cls(kind=parts[1], fraction=float(parts[2]),
                   spares=int(parts[3][1:]))


@dataclass(frozen=True)
class ReliabilityGrid:
    """Axes of one reliability campaign (defaults: the fig-faults
    configuration swept over its wear levels)."""

    fractions: Tuple[float, ...] = FAULT_CAMPAIGN_FRACTIONS
    spares: Tuple[int, ...] = (8,)
    kinds: Tuple[str, ...] = ("write", "read")
    n_commands: int = 120
    campaign_seed: int = 1234

    def cells(self) -> List[ReliabilityCell]:
        return [ReliabilityCell(kind=kind, fraction=fraction, spares=spare)
                for fraction in self.fractions
                for spare in self.spares
                for kind in self.kinds]


def replica_point(grid: ReliabilityGrid, cell: ReliabilityCell,
                  replica: int) -> SweepPoint:
    """Build the sweep point of one replica.

    The point is an ordinary ``measure`` point — the campaign engine
    needs nothing reliability-specific — whose architecture differs from
    the cell's only in the fault-plan seed.
    """
    seed = replica_seed(grid.campaign_seed, cell.name, replica)
    arch = faults_architecture(seed=seed,
                               normalized_endurance=cell.fraction)
    arch = arch.scaled(faults=dataclasses.replace(
        arch.faults, spare_blocks_per_plane=cell.spares))
    factory = sequential_write if cell.kind == "write" else sequential_read
    name = f"{cell.name}/r{replica:05d}"
    # Writes warm-start the cache for the same reason faults_campaign
    # does: otherwise the closed loop ends before any page programs.
    return SweepPoint(name=name, arch=arch,
                      workload=factory(4096 * grid.n_commands),
                      evaluator="measure",
                      params={"label": name,
                              "warm_start": cell.kind == "write"})


def replica_points(grid: ReliabilityGrid, counts: Mapping[str, int]
                   ) -> List[SweepPoint]:
    """All replica points up to ``counts[cell.name]`` per cell, in
    deterministic (cell, replica) order."""
    points: List[SweepPoint] = []
    for cell in grid.cells():
        for replica in range(counts.get(cell.name, 0)):
            points.append(replica_point(grid, cell, replica))
    return points


# ----------------------------------------------------------------------
# Estimators


@dataclass
class ReliabilityEstimate:
    """Pooled estimate for one cell's replica population.

    ``uber`` is the page-granularity JEDEC form used by
    :func:`repro.ssd.metrics.collect_reliability`: each uncorrectable
    page read counts its full payload as bad bits, so the page-bit terms
    cancel and the proportion is ``uncorrectable_reads / page_reads`` —
    a binomial count the Wilson interval applies to directly.
    """

    cell: ReliabilityCell
    replicas: int
    commands: int
    failed_commands: int
    page_reads: int
    uncorrectable_reads: int
    read_retries: int
    retired_blocks: int
    remapped_programs: int
    background_write_faults: int
    outcomes: Dict[str, int]
    mean_sustained_mbps: float
    uber: float = field(init=False)
    uber_ci: Tuple[float, float] = field(init=False)
    failed_rate: float = field(init=False)
    failed_rate_ci: Tuple[float, float] = field(init=False)

    def __post_init__(self) -> None:
        self.uber = (self.uncorrectable_reads / self.page_reads
                     if self.page_reads else 0.0)
        self.uber_ci = wilson_interval(self.uncorrectable_reads,
                                       self.page_reads)
        self.failed_rate = (self.failed_commands / self.commands
                            if self.commands else 0.0)
        self.failed_rate_ci = wilson_interval(self.failed_commands,
                                              self.commands)

    def half_width(self, metric: str) -> float:
        """CI half-width of one stopping metric (see STOPPING_METRICS)."""
        if metric == "failed_rate":
            low, high = self.failed_rate_ci
        elif metric == "uber":
            low, high = self.uber_ci
        else:
            raise ValueError(f"unknown stopping metric {metric!r}; "
                             f"expected one of {STOPPING_METRICS}")
        return (high - low) / 2.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.cell.kind,
            "fraction": self.cell.fraction,
            "spares": self.cell.spares,
            "replicas": self.replicas,
            "commands": self.commands,
            "failed_commands": self.failed_commands,
            "failed_rate": self.failed_rate,
            "failed_rate_ci95": list(self.failed_rate_ci),
            "page_reads": self.page_reads,
            "uncorrectable_reads": self.uncorrectable_reads,
            "uber": self.uber,
            "uber_ci95": list(self.uber_ci),
            "read_retries": self.read_retries,
            "retired_blocks": self.retired_blocks,
            "remapped_programs": self.remapped_programs,
            "background_write_faults": self.background_write_faults,
            "outcomes": {name: self.outcomes.get(name, 0)
                         for name in OUTCOME_ORDER},
            "mean_sustained_mbps": self.mean_sustained_mbps,
        }


def _replica_cell(point_name: str) -> str:
    """``rel/write/0.9/s8/r00012`` -> ``rel/write/0.9/s8``."""
    cell, _, replica = point_name.rpartition("/r")
    if not cell or not replica.isdigit():
        raise ValueError(f"not a replica point name: {point_name!r}")
    return cell


def aggregate_estimates(payloads: Mapping[str, Mapping[str, object]]
                        ) -> Dict[str, ReliabilityEstimate]:
    """Pool replica payloads into per-cell estimates.

    ``payloads`` maps replica point names to ``measure`` payloads (as
    returned by ``SweepResult.payloads()`` or read back from a campaign
    directory).  Pooling iterates names in sorted order, so the result
    is a pure function of the payload *set* — the byte-identity rule.
    """
    by_cell: Dict[str, List[str]] = {}
    for name in sorted(payloads):
        by_cell.setdefault(_replica_cell(name), []).append(name)
    estimates: Dict[str, ReliabilityEstimate] = {}
    for cell_name in sorted(by_cell):
        names = by_cell[cell_name]
        commands = failed = page_reads = uncorrectable = 0
        retries = retired = remapped = background = 0
        outcomes = {key: 0 for key in OUTCOME_ORDER}
        mbps_total = 0.0
        for name in names:
            payload = payloads[name]
            reliability = payload.get("reliability", {})
            commands += int(payload.get("commands", 0))
            failed += int(reliability.get("failed_commands", 0))
            page_reads += int(reliability.get("page_reads", 0))
            uncorrectable += int(reliability.get("uncorrectable_reads", 0))
            retries += int(reliability.get("read_retries", 0))
            retired += int(reliability.get("retired_blocks", 0))
            remapped += int(reliability.get("remapped_programs", 0))
            background += int(reliability.get("background_write_faults", 0))
            for key, count in reliability.get("outcomes", {}).items():
                outcomes[key] = outcomes.get(key, 0) + int(count)
            mbps_total += float(payload.get("sustained_mbps", 0.0))
        estimates[cell_name] = ReliabilityEstimate(
            cell=ReliabilityCell.parse(cell_name),
            replicas=len(names),
            commands=commands,
            failed_commands=failed,
            page_reads=page_reads,
            uncorrectable_reads=uncorrectable,
            read_retries=retries,
            retired_blocks=retired,
            remapped_programs=remapped,
            background_write_faults=background,
            outcomes=outcomes,
            mean_sustained_mbps=mbps_total / len(names),
        )
    return estimates


def reliability_frontier(estimates: Mapping[str, ReliabilityEstimate],
                         metric: str = "failed_rate") -> List[str]:
    """Perf-vs-reliability-vs-spares Pareto frontier over cell names.

    Three maximize-objectives through :func:`repro.core.pareto
    .multi_frontier`: sustained throughput up, the stopping metric
    (failure proportion) down, spare capacity down.  Cells off the
    frontier are dominated: some other cell is at least as fast, at
    least as reliable and spends no more spare capacity.
    """
    names = sorted(estimates)

    def rate(name: str) -> float:
        estimate = estimates[name]
        return estimate.failed_rate if metric == "failed_rate" \
            else estimate.uber

    return multi_frontier(
        names,
        objectives=(
            lambda name: estimates[name].mean_sustained_mbps,
            lambda name: -rate(name),
            lambda name: -float(estimates[name].cell.spares),
        ),
        name=lambda name: name)


# ----------------------------------------------------------------------
# Campaign driver (sequential stopping rule)


@dataclass
class ReliabilityOutcome:
    """Everything one reliability campaign run decided and estimated."""

    #: The grid the campaign ran over; ``None`` when rebuilt from a
    #: campaign directory (the manifest does not persist grid knobs).
    grid: Optional[ReliabilityGrid]
    estimates: Dict[str, ReliabilityEstimate]
    scheduled: Dict[str, int]      # replicas scheduled per cell
    converged: Dict[str, bool]     # CI target reached (vs budget stop)
    frontier: List[str]
    batches: int
    metric: str
    target_half_width: Optional[float]
    failed_points: List[str]
    last_result: Optional[SweepResult] = None

    def to_dict(self) -> Dict[str, object]:
        """Deterministic document — the bytes the smoke tier compares.

        Contains no wall-clock, worker-count or scheduling artifacts:
        two runs over the same grid must serialize identically whatever
        the process topology.
        """
        return {
            "grid": None if self.grid is None else {
                "fractions": list(self.grid.fractions),
                "spares": list(self.grid.spares),
                "kinds": list(self.grid.kinds),
                "n_commands": self.grid.n_commands,
                "campaign_seed": self.grid.campaign_seed,
            },
            "metric": self.metric,
            "target_half_width": self.target_half_width,
            "batches": self.batches,
            "scheduled": {name: self.scheduled[name]
                          for name in sorted(self.scheduled)},
            "converged": {name: self.converged[name]
                          for name in sorted(self.converged)},
            "estimates": {name: self.estimates[name].to_dict()
                          for name in sorted(self.estimates)},
            "frontier": list(self.frontier),
            "failed_points": list(self.failed_points),
        }

    def format(self) -> str:
        lines = [
            f"{'cell':<22} {'reps':>5} {'MB/s':>8} {'fail-rate':>10} "
            f"{'95% CI':>19} {'UBER':>10} {'conv':>5}"]
        lines.append("-" * len(lines[0]))
        for name in sorted(self.estimates):
            estimate = self.estimates[name]
            low, high = estimate.failed_rate_ci
            flag = "yes" if self.converged.get(name) else "no"
            lines.append(
                f"{name:<22} {estimate.replicas:>5d} "
                f"{estimate.mean_sustained_mbps:>8.1f} "
                f"{estimate.failed_rate:>10.4f} "
                f"[{low:>8.4f},{high:>8.4f}] "
                f"{estimate.uber:>10.2e} {flag:>5}")
        lines.append("")
        lines.append("perf-vs-reliability-vs-spares frontier:")
        for name in self.frontier:
            estimate = self.estimates[name]
            lines.append(f"  {name}: {estimate.mean_sustained_mbps:.1f} "
                         f"MB/s, fail-rate {estimate.failed_rate:.4f}, "
                         f"{estimate.cell.spares} spares/plane")
        if self.failed_points:
            lines.append("")
            lines.append(f"failed replica points: "
                         f"{len(self.failed_points)} "
                         f"(excluded from estimates)")
            for name in self.failed_points:
                lines.append(f"  {name}")
        return "\n".join(lines)


def run_reliability_campaign(grid: Optional[ReliabilityGrid] = None,
                             runner: Optional[SweepRunner] = None,
                             replicas: int = 64,
                             batch: Optional[int] = None,
                             target_half_width: Optional[float] = None,
                             metric: str = "failed_rate"
                             ) -> ReliabilityOutcome:
    """Run a Monte-Carlo reliability campaign with a sequential stopping
    rule.

    ``replicas`` is the per-cell budget.  With ``target_half_width``
    set, replicas are scheduled in batches of ``batch`` (default 16) and
    a cell stops early once the 95% CI half-width of ``metric`` reaches
    the target — mirroring the budgeted promotion of
    :mod:`repro.core.adaptive`: spend simulation where the uncertainty
    still is.  Without a target every cell runs the full budget in one
    batch.

    The stopping decision only reads pooled estimates at batch barriers,
    so the schedule — and therefore the final estimate bytes — is
    independent of worker count and identical on crash-resume (finished
    replicas replay from the campaign cache).

    ``runner`` is any :class:`SweepRunner`-compatible runner; pass a
    :class:`~repro.core.campaign.CampaignRunner` for durable,
    multi-worker, crash-resumable execution.
    """
    if metric not in STOPPING_METRICS:
        raise ValueError(f"unknown stopping metric {metric!r}; expected "
                         f"one of {STOPPING_METRICS}")
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    grid = grid or ReliabilityGrid()
    runner = runner or SweepRunner(workers=1)
    batch_size = replicas if target_half_width is None \
        else max(1, min(batch or 16, replicas))

    cells = grid.cells()
    scheduled = {cell.name: 0 for cell in cells}
    converged = {cell.name: False for cell in cells}
    active = [cell.name for cell in cells]
    payloads: Dict[str, Mapping[str, object]] = {}
    failed_points: List[str] = []
    batches = 0
    result: Optional[SweepResult] = None

    while active:
        batches += 1
        for name in active:
            scheduled[name] = min(replicas, scheduled[name] + batch_size)
        # Cumulative point list: already-published replicas replay from
        # the cache (reported as `cached`), so resubmitting them costs
        # one envelope read and keeps the runner call idempotent.
        points = replica_points(grid, scheduled)
        result = runner.run(points)
        payloads = result.payloads()
        failed_points = sorted(outcome.name
                               for outcome in result.failures())
        estimates = aggregate_estimates(payloads)
        still_active: List[str] = []
        for name in active:
            estimate = estimates.get(name)
            if (target_half_width is not None and estimate is not None
                    and estimate.half_width(metric) <= target_half_width):
                converged[name] = True
            elif scheduled[name] < replicas:
                still_active.append(name)
        active = still_active

    estimates = aggregate_estimates(payloads)
    return ReliabilityOutcome(
        grid=grid,
        estimates=estimates,
        scheduled=scheduled,
        converged=converged,
        frontier=reliability_frontier(estimates, metric=metric),
        batches=batches,
        metric=metric,
        target_half_width=target_half_width,
        failed_points=failed_points,
        last_result=result,
    )


def report_from_campaign(directory: str, metric: str = "failed_rate"
                         ) -> ReliabilityOutcome:
    """Rebuild estimates from a campaign directory without simulating.

    Reads every published ``rel/`` envelope out of the campaign cache
    (skipping pending and failed points) and pools them exactly like the
    run path — the two agree byte-for-byte on a drained campaign.
    """
    campaign = Campaign.open(directory)
    manifest = campaign.load_manifest()
    payloads: Dict[str, Mapping[str, object]] = {}
    failed_points: List[str] = []
    for entry in manifest["points"]:
        name = entry["name"]
        if not name.startswith(REL_PREFIX):
            continue
        envelope = campaign.cache.load(entry["key"])
        if envelope is None:
            continue
        if envelope.get("failure") is not None:
            failed_points.append(name)
            continue
        payloads[name] = envelope["payload"]
    estimates = aggregate_estimates(payloads)
    scheduled: Dict[str, int] = {}
    for name in payloads:
        cell = _replica_cell(name)
        scheduled[cell] = scheduled.get(cell, 0) + 1
    return ReliabilityOutcome(
        grid=None,
        estimates=estimates,
        scheduled=scheduled,
        converged={name: False for name in estimates},
        frontier=reliability_frontier(estimates, metric=metric),
        batches=0,
        metric=metric,
        target_half_width=None,
        failed_points=sorted(failed_points),
    )
