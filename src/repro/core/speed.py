"""Fig. 6: simulation speed in kilo-cycles per second (KCPS).

The paper measures how many kilo-cycles of the simulated 200 MHz platform
clock the simulator advances per wall-clock second, across the Table III
configurations, and shows the speed scaling inversely with the number of
instantiated resources.  We measure exactly the same quantity for this
kernel; absolute values are host- and implementation-dependent (theirs:
a 2.27 GHz Xeon running SystemC), the inverse scaling is the claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..host.workload import sequential_write
from ..kernel import Simulator
from ..kernel.simtime import period_from_hz
from ..ssd.architecture import SsdArchitecture
from ..ssd.device import SsdDevice
from ..ssd.metrics import run_workload

#: The platform reference clock whose cycles KCPS counts (the CPU/AHB
#: clock of the modeled controller).
PLATFORM_CLOCK_HZ = 200e6


@dataclass
class SpeedSample:
    """One configuration's simulation-speed measurement."""

    label: str
    simulated_cycles: float
    wall_seconds: float
    events: int

    @property
    def kcps(self) -> float:
        """Kilo-cycles of simulated platform clock per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.simulated_cycles / 1e3 / self.wall_seconds

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds


def measure_speed(arch: SsdArchitecture, n_commands: int = 400,
                  label: str = "") -> SpeedSample:
    """Run a sequential-write burst and report KCPS."""
    sim = Simulator()
    device = SsdDevice(sim, arch)
    workload = sequential_write(4096 * n_commands)
    wall_start = time.perf_counter()
    run_workload(sim, device, workload)
    wall = time.perf_counter() - wall_start
    cycles = sim.now / period_from_hz(PLATFORM_CLOCK_HZ)
    return SpeedSample(label=label or arch.label,
                       simulated_cycles=cycles,
                       wall_seconds=wall,
                       events=sim.events_processed)


def speed_sweep(configs: Dict[str, SsdArchitecture],
                n_commands: int = 400) -> Dict[str, SpeedSample]:
    """Fig. 6 over a set of configurations (typically Table III)."""
    return {name: measure_speed(arch, n_commands=n_commands, label=name)
            for name, arch in configs.items()}
