"""Multi-tenant serving sweep: arbitration, tail QoS, interference.

EagleTree-style experiment family (PAPERS.md): the interesting output of
a multi-initiator run is *interference and tail behavior*, not mean
throughput.  Each sweep point arbitrates N tenant streams
(:mod:`repro.host.tenants`) into one device admission order, replays it
through the standard :func:`~repro.ssd.metrics.run_workload` path, then
separates the completed commands back per tenant to report:

* p50 / p99 / p99.9 / p99.99 latency from a log-binned
  :class:`~repro.kernel.LatencyHistogram` (linear bins collapse the far
  tail into one overflow bucket — a regression test proves it);
* achieved vs demanded IOPS share (demand from arbitration weights, or
  from configured rates for open-loop tenants);
* an N×N noisy-neighbor matrix: tenant *i*'s mean-latency inflation when
  paired with tenant *j* versus running solo on the identical namespace
  layout, with the GC-attributed share measured via the span/obs layer.

Determinism contract (same as every evaluator): payloads depend only on
fingerprint inputs, ``wall_seconds`` is zeroed, and — locked by the
tenant byte-identity tier — a single tenant degenerates to the plain
single-initiator path because the merge of one stream *is* that stream.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..host.tenants import (ARBITRATION_POLICIES, Tenant, TenantSpec,
                            build_tenants, merge_tenants)
from ..host.traces.records import TraceError
from ..host.workload import CommandListWorkload
from ..kernel import LatencyHistogram, Simulator
from ..obs.spans import disable_observability, enable_observability
from ..ssd.architecture import SsdArchitecture
from ..ssd.device import SsdDevice
from ..ssd.metrics import RunResult, json_safe, run_workload
from .sweep import SweepPoint, SweepRunner
from .tracereplay import sha256_file

#: Sub-bins per power of two for tail percentiles: 16 bounds the relative
#: quantile error at 1/16 ~ 6.3% across the whole dynamic range.
TAIL_BINS_PER_OCTAVE = 16

#: Tenant-set sizes and policies of the default sweep grid.
DEFAULT_TENANT_COUNTS = (1, 2, 3)


def tenants_base_architecture() -> SsdArchitecture:
    """Default design point for tenant sweeps: the 4-die microscope on an
    NVMe host.

    Same concentrated geometry as the FTL microscope (short streams must
    actually contend), but behind PCIe/NVMe — per-tenant submission
    queues are an NVMe concept, and the deep host queue keeps the closed
    loop saturating so arbitration, not the host link, sets the shares.
    """
    from ..host.interface import pcie_nvme_spec
    return SsdArchitecture().scaled(n_channels=2, n_ways=2, dies_per_way=1,
                                    n_ddr_buffers=2,
                                    host=pcie_nvme_spec(queue_depth=64))


def default_tenant_set(n: int) -> List[TenantSpec]:
    """A varied n-tenant mix for grid points: distinct workload shapes,
    escalating weights (tenant i gets weight i+1), per-tenant seeds."""
    if n < 1:
        raise ValueError("n must be >= 1")
    shapes = ("RR", "SW", "kv", "mixed", "pageio", "SR", "RW")
    return [TenantSpec(name=f"t{i}", workload=shapes[i % len(shapes)],
                       n_commands=48, block_bytes=4096,
                       span_bytes=1 << 22, weight=i + 1, queue_depth=8,
                       seed=0xC0FFEE + i)
            for i in range(n)]


# ----------------------------------------------------------------------
# Core run


def _demanded_shares(specs: Sequence[TenantSpec],
                     policy: str) -> List[float]:
    """Each tenant's demanded IOPS fraction.

    Open-loop sets demand their configured rates; closed-loop sets
    demand what the arbitration policy promises — equal shares under
    ``rr``, weight-proportional under ``wrr``.
    """
    if any(spec.open_loop for spec in specs):
        total = sum(spec.rate_iops for spec in specs)
        return [spec.rate_iops / total if total else 0.0 for spec in specs]
    if policy == "wrr":
        total = sum(spec.weight for spec in specs)
        return [spec.weight / total for spec in specs]
    return [1.0 / len(specs)] * len(specs)


def _tenant_rows(tenants: Sequence[Tenant],
                 merged: Sequence[Tuple[int, Any]], policy: str
                 ) -> List[Dict[str, Any]]:
    """Separate a completed merged run back into per-tenant metrics."""
    demanded = _demanded_shares([tenant.spec for tenant in tenants], policy)
    latencies: List[List[int]] = [[] for __ in tenants]
    nbytes = [0] * len(tenants)
    last_done = [0] * len(tenants)
    for index, command in merged:
        if command.complete_time_ps < 0:
            continue
        latencies[index].append(command.latency_ps)
        nbytes[index] += command.nbytes
        last_done[index] = max(last_done[index], command.complete_time_ps)
    iops = []
    for index in range(len(tenants)):
        seconds = last_done[index] / 1e12
        iops.append(len(latencies[index]) / seconds if seconds else 0.0)
    total_iops = sum(iops)
    rows: List[Dict[str, Any]] = []
    for index, tenant in enumerate(tenants):
        lat = latencies[index]
        hist = LatencyHistogram(bins_per_octave=TAIL_BINS_PER_OCTAVE)
        for sample in lat:
            hist.add(sample)
        rows.append({
            "name": tenant.name,
            "workload": tenant.spec.workload,
            "weight": tenant.spec.weight,
            "commands": len(lat),
            "bytes": nbytes[index],
            "demanded_share": demanded[index],
            "achieved_share": iops[index] / total_iops if total_iops
            else 0.0,
            "achieved_iops": iops[index],
            "latency_us": {
                "mean": (sum(lat) / len(lat) / 1e6) if lat else 0.0,
                "max": (max(lat) / 1e6) if lat else 0.0,
                "p50": hist.percentile(0.50) / 1e6,
                "p99": hist.percentile(0.99) / 1e6,
                "p999": hist.percentile(0.999) / 1e6,
                "p9999": hist.percentile(0.9999) / 1e6,
            },
        })
    return rows


def _mix_pattern(tenants: Sequence[Tenant]) -> str:
    """WAF pattern of a merged stream: random dominates a mix."""
    return ("random" if any(tenant.pattern == "random"
                            for tenant in tenants) else "sequential")


def _honor_issue_times(tenants: Sequence[Tenant]) -> bool:
    return any(tenant.spec.open_loop or tenant.spec.workload == "trace"
               for tenant in tenants)


def _install_namespaces(device: SsdDevice,
                        tenants: Sequence[Tenant]) -> None:
    ranges = [(tenant.partition.base_lba, tenant.partition.end_lba,
               tenant.partition.channels) for tenant in tenants
              if tenant.partition.channels]
    if ranges:
        device.set_namespace_channels(ranges)


def run_tenant_mix(arch: SsdArchitecture, specs: Sequence[TenantSpec],
                   policy: str = "rr", isolate_channels: bool = False,
                   label: str = "") -> Tuple[Dict[str, Any], RunResult]:
    """Arbitrate and run one tenant mix; returns (payload, RunResult).

    The payload's ``aggregate`` section is the plain
    :meth:`~repro.ssd.metrics.RunResult.to_dict` of the merged run —
    for a single tenant it is byte-identical to what ``run_workload``
    reports for that tenant's stream alone, because the merged stream
    *is* that stream and the device setup is the same.
    """
    if policy not in ARBITRATION_POLICIES:
        raise ValueError(f"unknown arbitration policy {policy!r}")
    tenants = build_tenants(specs, n_channels=arch.n_channels,
                            isolate_channels=isolate_channels)
    merged = merge_tenants(tenants, policy=policy)
    sim = Simulator()
    device = SsdDevice(sim, arch)
    _install_namespaces(device, tenants)
    device.preload_for_reads()
    workload = CommandListWorkload([command for __, command in merged],
                                  pattern=_mix_pattern(tenants))
    result = run_workload(sim, device, workload,
                          label=label or f"tenants-{len(tenants)}-{policy}",
                          honor_issue_times=_honor_issue_times(tenants))
    payload = {
        "label": result.label,
        "policy": policy,
        "n_tenants": len(tenants),
        "isolate_channels": bool(isolate_channels),
        "tenants": json_safe(_tenant_rows(tenants, merged, policy)),
        "aggregate": result.to_dict(),
    }
    return payload, result


# ----------------------------------------------------------------------
# Noisy-neighbor interference matrix


def _measure_subset(arch: SsdArchitecture, specs: Sequence[TenantSpec],
                    active: Sequence[int], policy: str,
                    isolate_channels: bool
                    ) -> Tuple[Dict[int, Tuple[float, float]], int]:
    """Run only ``active`` tenants on the *full* namespace layout.

    All tenants are bound (so partition bases, channel sets and qids are
    identical in solo, pairwise and full runs) but only the active
    streams are merged and driven.  Returns
    ``{tenant_index: (mean_latency_us, gc_us_per_command)}`` plus the
    kernel event count.
    """
    tenants = build_tenants(specs, n_channels=arch.n_channels,
                            isolate_channels=isolate_channels)
    subset = [tenants[index] for index in active]
    merged = merge_tenants(subset, policy=policy)
    sim = Simulator()
    device = SsdDevice(sim, arch)
    _install_namespaces(device, tenants)
    device.preload_for_reads()
    workload = CommandListWorkload([command for __, command in merged],
                                  pattern=_mix_pattern(subset))
    result = run_workload(sim, device, workload,
                          label=f"interference-{'+'.join(t.name for t in subset)}",
                          honor_issue_times=_honor_issue_times(subset))
    stats: Dict[int, Tuple[float, float]] = {}
    for position, tenant_index in enumerate(active):
        commands = [command for index, command in merged
                    if index == position and command.complete_time_ps >= 0]
        if not commands:
            stats[tenant_index] = (0.0, 0.0)
            continue
        mean_us = sum(c.latency_ps for c in commands) / len(commands) / 1e6
        gc_ps = sum(c.span.stage_totals().get("gc", 0)
                    for c in commands if c.span is not None)
        stats[tenant_index] = (mean_us, gc_ps / len(commands) / 1e6)
    return stats, result.events


def interference_matrix(arch: SsdArchitecture,
                        specs: Sequence[TenantSpec], policy: str = "rr",
                        isolate_channels: bool = False
                        ) -> Tuple[Dict[str, Any], int]:
    """N×N noisy-neighbor matrix: pairwise latency inflation vs solo.

    ``inflation[i][j]`` is tenant *i*'s mean-latency inflation (e.g.
    ``0.25`` = 25% slower) when running *with* tenant *j*, against
    tenant *i* running solo on the identical namespace layout; the
    diagonal is zero by definition.  ``gc_attributed_us[i][j]`` is the
    per-command GC time tenant *i* gained in that pairing, measured from
    command spans (observability is armed for these sub-runs only — it
    records time, it does not change it).

    Runs N solo + N·(N−1)/2 pairwise simulations; returns the matrix
    payload and the total kernel events they cost.
    """
    n = len(specs)
    names = [spec.name for spec in specs]
    inflation = [[0.0] * n for __ in range(n)]
    gc_us = [[0.0] * n for __ in range(n)]
    events = 0
    enable_observability()
    try:
        solo: Dict[int, Tuple[float, float]] = {}
        for index in range(n):
            stats, cost = _measure_subset(arch, specs, [index], policy,
                                          isolate_channels)
            solo[index] = stats[index]
            events += cost
        for i in range(n):
            for j in range(i + 1, n):
                stats, cost = _measure_subset(arch, specs, [i, j], policy,
                                              isolate_channels)
                events += cost
                for victim, neighbor in ((i, j), (j, i)):
                    mean_us, pair_gc = stats[victim]
                    base_us, base_gc = solo[victim]
                    inflation[victim][neighbor] = (
                        mean_us / base_us - 1.0 if base_us else 0.0)
                    gc_us[victim][neighbor] = pair_gc - base_gc
    finally:
        disable_observability()
    return json_safe({"tenants": names, "inflation": inflation,
                      "gc_attributed_us": gc_us}), events


# ----------------------------------------------------------------------
# Sweep wiring


def evaluate_tenants_point(point: SweepPoint) -> Tuple[Dict[str, Any], int]:
    """The ``tenants`` sweep evaluator (runs inside worker processes)."""
    specs = list(point.workload)
    for spec in specs:
        if not isinstance(spec, TenantSpec):
            raise TypeError(f"tenants evaluator needs TenantSpec items, "
                            f"got {type(spec).__name__}")
        if spec.workload == "trace" and spec.trace_sha256:
            actual = sha256_file(spec.trace_path)
            if actual != spec.trace_sha256:
                raise TraceError(
                    f"{spec.trace_path}: content hash {actual[:12]}... "
                    f"does not match tenant {spec.name!r}'s "
                    f"{spec.trace_sha256[:12]}... — the trace changed "
                    f"since the sweep was defined")
    params = dict(point.params)
    policy = str(params.get("policy", "rr"))
    isolate = bool(params.get("isolate_channels", False))
    payload, result = run_tenant_mix(
        point.arch, specs, policy=policy, isolate_channels=isolate,
        label=str(params.get("label", point.name)))
    events = result.events
    if params.get("interference", True) and len(specs) > 1:
        matrix, cost = interference_matrix(point.arch, specs,
                                           policy=policy,
                                           isolate_channels=isolate)
        payload["interference"] = matrix
        events += cost
    # Wall time is machine load, not simulation output; keep payloads
    # deterministic so cached and fresh runs agree byte for byte.
    payload["aggregate"]["wall_seconds"] = 0.0
    return payload, events


def tenant_sweep_points(counts: Sequence[int] = DEFAULT_TENANT_COUNTS,
                        policies: Sequence[str] = ARBITRATION_POLICIES,
                        base: Optional[SsdArchitecture] = None,
                        interference: bool = True) -> List[SweepPoint]:
    """The tenant-count × arbitration-policy grid (``t{n}-{policy}``)."""
    arch = base or tenants_base_architecture()
    points: List[SweepPoint] = []
    for count in counts:
        specs = default_tenant_set(count)
        for policy in policies:
            if policy not in ARBITRATION_POLICIES:
                raise ValueError(f"unknown arbitration policy {policy!r}")
            name = f"t{count}-{policy}"
            points.append(SweepPoint(
                name=name, arch=arch, workload=specs, evaluator="tenants",
                params={"policy": policy, "label": name,
                        "interference": interference}))
    return points


def tenant_sweep(counts: Sequence[int] = DEFAULT_TENANT_COUNTS,
                 policies: Sequence[str] = ARBITRATION_POLICIES,
                 base: Optional[SsdArchitecture] = None,
                 runner: Optional[SweepRunner] = None,
                 interference: bool = True) -> Dict[str, Dict[str, Any]]:
    """Run the grid; ``{point name: payload}``.

    Raises ``RuntimeError`` if any point fails, naming each failed point
    — a missing key always means "not requested", never "silently
    dropped".
    """
    runner = runner or SweepRunner(workers=1)
    result = runner.run(tenant_sweep_points(counts=counts,
                                            policies=policies, base=base,
                                            interference=interference))
    failures = result.failures()
    if failures:
        detail = "; ".join(f"{o.name}: {o.failure.error_type}: "
                           f"{o.failure.message}" for o in failures)
        raise RuntimeError(f"tenant sweep failed for {len(failures)} "
                           f"point(s): {detail}")
    return result.payloads()


def tenant_sweep_table(payloads: Dict[str, Dict[str, Any]]
                       ) -> List[Dict[str, Any]]:
    """Flatten sweep payloads to per-tenant QoS rows (one per tenant per
    point): shares, tail percentiles and the worst neighbor's inflation."""
    rows: List[Dict[str, Any]] = []
    for name, payload in payloads.items():
        matrix = payload.get("interference", {})
        names = matrix.get("tenants", [])
        inflation = matrix.get("inflation", [])
        for row in payload.get("tenants", []):
            worst = None
            if row["name"] in names:
                index = names.index(row["name"])
                others = [value for j, value in enumerate(inflation[index])
                          if j != index]
                worst = max(others) if others else None
            latency = row.get("latency_us", {})
            rows.append({
                "point": name,
                "policy": payload.get("policy"),
                "tenant": row["name"],
                "workload": row["workload"],
                "weight": row["weight"],
                "commands": row["commands"],
                "demanded_share": row["demanded_share"],
                "achieved_share": row["achieved_share"],
                "mean_latency_us": latency.get("mean"),
                "p50_latency_us": latency.get("p50"),
                "p99_latency_us": latency.get("p99"),
                "p999_latency_us": latency.get("p999"),
                "p9999_latency_us": latency.get("p9999"),
                "worst_neighbor_inflation": worst,
            })
    return rows
