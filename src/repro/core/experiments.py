"""Canonical experiment definitions: the paper's tables and figures.

Everything the benchmark harness regenerates lives here so that tests,
benches and examples share one source of truth:

* :data:`TABLE2_CONFIGS` — the ten design points of Table II (Fig. 3/4),
* :data:`TABLE3_CONFIGS` — the eight configurations of Table III (Fig. 6),
* :func:`fig3_sweep` / :func:`fig4_sweep` — the host-interface studies,
* :func:`fig5_wearout_sweep` — fixed vs adaptive BCH over endurance,
* :func:`validation_config` — the barefoot-like instance behind Fig. 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ecc import AdaptiveBch, FixedBch
from ..host.interface import pcie_nvme_spec, sata2_spec
from ..host.workload import (Workload, sequential_read, sequential_write)
from ..ssd.architecture import (CachePolicy, SsdArchitecture,
                                parse_geometry_label)
from ..ssd.scenarios import BreakdownRow
from .sweep import SweepPoint, SweepRunner

#: Table II of the paper: "SSD CONFIGURATIONS" for Fig. 3 and Fig. 4.
TABLE2_LABELS: Dict[str, str] = {
    "C1": "4-DDR-buf;4-CHN;4-WAY;2-DIE",
    "C2": "8-DDR-buf;8-CHN;4-WAY;2-DIE",
    "C3": "8-DDR-buf;8-CHN;8-WAY;2-DIE",
    "C4": "8-DDR-buf;8-CHN;8-WAY;4-DIE",
    "C5": "8-DDR-buf;8-CHN;8-WAY;8-DIE",
    "C6": "16-DDR-buf;16-CHN;8-WAY;4-DIE",
    "C7": "16-DDR-buf;16-CHN;4-WAY;2-DIE",
    "C8": "32-DDR-buf;32-CHN;4-WAY;2-DIE",
    "C9": "32-DDR-buf;32-CHN;1-WAY;1-DIE",
    "C10": "32-DDR-buf;32-CHN;8-WAY;4-DIE",
}

#: Table III of the paper: configurations for the simulation-speed study.
TABLE3_LABELS: Dict[str, str] = {
    "C1": "1-DDR-buf;1-CHN;1-WAY;1-DIE",
    "C2": "1-DDR-buf;2-CHN;1-WAY;2-DIE",
    "C3": "1-DDR-buf;4-CHN;1-WAY;2-DIE",
    "C4": "1-DDR-buf;4-CHN;2-WAY;4-DIE",
    "C5": "4-DDR-buf;4-CHN;2-WAY;4-DIE",
    "C6": "4-DDR-buf;4-CHN;2-WAY;8-DIE",
    "C7": "4-DDR-buf;4-CHN;2-WAY;16-DIE",
    "C8": "32-DDR-buf;32-CHN;16-WAY;16-DIE",
}


def _architectures(labels: Dict[str, str],
                   base: Optional[SsdArchitecture] = None
                   ) -> Dict[str, SsdArchitecture]:
    base = base or SsdArchitecture()
    return {name: base.scaled(**parse_geometry_label(label))
            for name, label in labels.items()}


def table2_configs(base: Optional[SsdArchitecture] = None
                   ) -> Dict[str, SsdArchitecture]:
    """The ten Table II architectures, on a common base."""
    return _architectures(TABLE2_LABELS, base)


def table3_configs(base: Optional[SsdArchitecture] = None
                   ) -> Dict[str, SsdArchitecture]:
    """The eight Table III architectures, on a common base."""
    return _architectures(TABLE3_LABELS, base)


#: Workload of the Fig. 3/4 experiments: sequential write, 4 KiB payloads.
def fig3_workload(n_commands: int = 2000) -> Workload:
    return sequential_write(4096 * n_commands)


def breakdown_points(base: SsdArchitecture, n_commands: int,
                     configs: Optional[List[str]] = None,
                     prefix: str = "") -> List[SweepPoint]:
    """Table II study as sweep points (shared by figs, campaigns and the
    adaptive search, which prefixes its fast-tier screen ``fast/``)."""
    workload = fig3_workload(n_commands)
    selected = configs or list(TABLE2_LABELS)
    return [SweepPoint(name=f"{prefix}{name}", arch=arch,
                       workload=workload)
            for name, arch in table2_configs(base).items()
            if name in selected]


def _breakdown_sweep(base: SsdArchitecture, n_commands: int,
                     configs: Optional[List[str]],
                     runner: Optional[SweepRunner]
                     ) -> Dict[str, BreakdownRow]:
    """Fan a Table II study out through the sweep engine."""
    runner = runner or SweepRunner(workers=1)
    result = runner.run(breakdown_points(base, n_commands, configs))
    return {outcome.name: BreakdownRow.from_dict(outcome.payload)
            for outcome in result.outcomes if not outcome.failed}


def fig3_sweep(n_commands: int = 2000,
               configs: Optional[List[str]] = None,
               runner: Optional[SweepRunner] = None,
               fidelity=None) -> Dict[str, BreakdownRow]:
    """Fig. 3: sequential write over Table II with the SATA II interface.

    ``fidelity`` (a :class:`~repro.ssd.fidelity.FidelityConfig` or spec
    string) selects the abstraction level for every point; ``None``
    keeps the default cycle-accurate models.
    """
    base = SsdArchitecture(host=sata2_spec())
    if fidelity is not None:
        base = base.with_fidelity(fidelity)
    return _breakdown_sweep(base, n_commands, configs, runner)


def fig4_sweep(n_commands: int = 2000,
               configs: Optional[List[str]] = None,
               runner: Optional[SweepRunner] = None,
               fidelity=None) -> Dict[str, BreakdownRow]:
    """Fig. 4: the same study with PCIe Gen2 x8 + NVMe (64K commands)."""
    base = SsdArchitecture(host=pcie_nvme_spec(generation=2, lanes=8))
    if fidelity is not None:
        base = base.with_fidelity(fidelity)
    return _breakdown_sweep(base, n_commands, configs, runner)


#: Fig. 5 architecture: "both 4 channels 2 ways and 4 dies".
def fig5_architecture(ecc, normalized_endurance: float) -> SsdArchitecture:
    arch = SsdArchitecture(n_ddr_buffers=4, n_channels=4, n_ways=2,
                           dies_per_way=4, ecc=ecc)
    pe = arch.wear_model.pe_for_normalized(normalized_endurance)
    return arch.scaled(initial_pe_cycles=pe)


def fig5_wearout_sweep(fractions: Optional[List[float]] = None,
                       n_commands: int = 400,
                       runner: Optional[SweepRunner] = None,
                       fidelity=None
                       ) -> Dict[str, List[Tuple[float, float]]]:
    """Fig. 5: throughput vs normalized rated endurance.

    Returns four series keyed 'fixed-read', 'adaptive-read',
    'fixed-write', 'adaptive-write' as (fraction, MB/s) points.
    """
    fractions = fractions if fractions is not None \
        else [i / 10 for i in range(11)]
    series: Dict[str, List[Tuple[float, float]]] = {
        "fixed-read": [], "adaptive-read": [],
        "fixed-write": [], "adaptive-write": [],
    }
    read_wl = sequential_read(4096 * n_commands)
    write_wl = sequential_write(4096 * n_commands)
    points: List[SweepPoint] = []
    slots: List[Tuple[str, float]] = []
    for fraction in fractions:
        for scheme_name, ecc in (("fixed", FixedBch()),
                                 ("adaptive", AdaptiveBch())):
            arch = fig5_architecture(ecc, fraction)
            if fidelity is not None:
                arch = arch.with_fidelity(fidelity)
            for kind, workload, warm in (("read", read_wl, False),
                                         ("write", write_wl, True)):
                label = f"fig5/{scheme_name}/{kind}/{fraction}"
                points.append(SweepPoint(
                    name=label, arch=arch, workload=workload,
                    evaluator="measure",
                    params={"warm_start": warm, "label": label}))
                slots.append((f"{scheme_name}-{kind}", fraction))
    runner = runner or SweepRunner(workers=1)
    outcomes = runner.run(points).outcomes
    for (key, fraction), outcome in zip(slots, outcomes):
        if outcome.failed:
            continue
        series[key].append((fraction, outcome.payload["sustained_mbps"]))
    return series


# ----------------------------------------------------------------------
# Profiled single points (span observability on, in-process)
# ----------------------------------------------------------------------
def profile_point(arch: SsdArchitecture, workload: Workload,
                  n_commands: Optional[int] = None,
                  warm_start: bool = False, label: str = "",
                  buckets: int = 60):
    """Run one point with span observability enabled.

    Unlike the sweep paths this always runs in-process — span recorders
    are process-global and cannot cross the worker-pool boundary.
    Returns ``(RunResult, SpanRecorder, timelines)``: the result carries
    the per-stage breakdown, the recorder the raw spans (for Chrome-trace
    export), and ``timelines`` the per-channel utilization series.
    """
    from ..obs import spans as _obs
    from ..ssd.metrics import collect_utilization_timelines
    from ..ssd.scenarios import measure_with_device
    recorder = _obs.enable_observability()
    try:
        result, device = measure_with_device(
            arch, workload, max_commands=n_commands, label=label,
            warm_start=warm_start)
        timelines = collect_utilization_timelines(device, buckets=buckets)
    finally:
        _obs.disable_observability()
    return result, recorder, timelines


def fig3_profile(config: str = "C1", n_commands: int = 400,
                 buckets: int = 60):
    """A profiled Fig. 3 cache-policy point: where its time actually goes.

    The sweep reports one throughput number per bar; this runs the same
    (architecture, workload) with spans on so the bar's height can be
    explained — e.g. C1's saturation shows up as the ``flash_drain`` /
    ``queue`` stages dominating time-in-flight.
    """
    base = SsdArchitecture(host=sata2_spec())
    arch = table2_configs(base)[config].with_cache_policy(
        CachePolicy.CACHING)
    return profile_point(arch, fig3_workload(n_commands),
                         n_commands=n_commands, warm_start=True,
                         label=f"fig3/{config}/cache", buckets=buckets)


def fig5_profile(scheme: str = "adaptive", kind: str = "read",
                 fraction: float = 1.0, n_commands: int = 200,
                 buckets: int = 60):
    """A profiled Fig. 5 point (ECC scheme x workload x wear fraction).

    Shows the mechanism behind the fixed-vs-adaptive gap: at high wear
    the ``ecc_decode`` stage share grows for the fixed scheme while the
    adaptive one holds it flat.
    """
    if scheme not in ("fixed", "adaptive"):
        raise ValueError(f"scheme must be fixed|adaptive, got {scheme!r}")
    if kind not in ("read", "write"):
        raise ValueError(f"kind must be read|write, got {kind!r}")
    ecc = AdaptiveBch() if scheme == "adaptive" else FixedBch()
    arch = fig5_architecture(ecc, fraction)
    factory = sequential_read if kind == "read" else sequential_write
    return profile_point(arch, factory(4096 * n_commands),
                         n_commands=n_commands, warm_start=kind == "write",
                         label=f"fig5/{scheme}/{kind}/{fraction}",
                         buckets=buckets)


#: Default endurance fractions for the fault-injection demo campaign:
#: healthy mid-life, near end-of-life, and at rated endurance.
FAULT_CAMPAIGN_FRACTIONS: Tuple[float, ...] = (0.5, 0.9, 1.0)


def faults_architecture(seed: int = 1234,
                        normalized_endurance: float = 0.9
                        ) -> SsdArchitecture:
    """A small drive with an aggressive-but-plausible fault campaign.

    Rates are scaled up from datasheet orders of magnitude so that a few
    hundred commands exhibit every recovery tier (read retry, remap,
    uncorrectable); the seed pins the whole schedule.
    """
    from ..faults import FaultConfig
    arch = SsdArchitecture(n_ddr_buffers=2, n_channels=2, n_ways=2,
                           dies_per_way=2, ecc=AdaptiveBch())
    pe = arch.wear_model.pe_for_normalized(normalized_endurance)
    # rber_scale 4x: below the ECC budget at mid-life, above it near
    # end-of-life, so the campaign shows the retry ladder engaging as the
    # drive wears out.
    faults = FaultConfig(enabled=True, seed=seed, rber_scale=4.0,
                         program_fail_prob=0.01, erase_fail_prob=0.01,
                         stuck_busy_prob=0.002, factory_bad_prob=0.002)
    return arch.scaled(initial_pe_cycles=pe, faults=faults)


def faults_campaign(n_commands: int = 300, seed: int = 1234,
                    fractions: Optional[List[float]] = None,
                    runner: Optional[SweepRunner] = None
                    ) -> Dict[str, Dict[str, object]]:
    """Seeded fault-injection campaign over wear levels and workloads.

    Returns ``{label: {"status": ..., "sustained_mbps": ...,
    <reliability metrics>}}`` in deterministic label order — two runs
    with the same seed must produce byte-identical rows whatever the
    worker count.

    Crashed points are reliability data, not noise: instead of being
    silently dropped they appear with ``status="failed"``, the failure's
    error type and message, and (when cached) the content key of the
    post-mortem envelope — the handle for
    ``repro.core.sweep.SweepCache`` forensics.
    """
    fractions = list(fractions if fractions is not None
                     else FAULT_CAMPAIGN_FRACTIONS)
    points: List[SweepPoint] = []
    for fraction in fractions:
        arch = faults_architecture(seed, fraction)
        # Writes warm-start the cache so the host is gated on the flash
        # drain (otherwise the closed loop ends before any page programs
        # and no write faults can fire).
        for kind, factory, warm in (("write", sequential_write, True),
                                    ("read", sequential_read, False)):
            label = f"faults/{kind}/{fraction}"
            points.append(SweepPoint(
                name=label, arch=arch, workload=factory(4096 * n_commands),
                evaluator="measure",
                params={"label": label, "warm_start": warm}))
    runner = runner or SweepRunner(workers=1)
    result = runner.run(points)
    rows: Dict[str, Dict[str, object]] = {}
    for outcome in result.outcomes:
        if outcome.failed:
            rows[outcome.name] = {
                "status": "failed",
                "error_type": outcome.failure.error_type,
                "message": outcome.failure.message,
                "post_mortem_key": outcome.key,
            }
            continue
        row: Dict[str, object] = {
            "status": "ok",
            "sustained_mbps": outcome.payload["sustained_mbps"]}
        row.update(outcome.payload.get("reliability", {}))
        rows[outcome.name] = row
    return rows


def validation_config() -> SsdArchitecture:
    """The barefoot-controller-like instance validated in Fig. 2.

    The Indilinx Barefoot generation: SATA II with NCQ, 4 channels with
    deep way interleaving, DRAM write cache enabled, fixed BCH.
    """
    return SsdArchitecture(
        n_ddr_buffers=4, n_channels=4, n_ways=4, dies_per_way=2,
        host=sata2_spec(), ecc=FixedBch(t=8),
    )
