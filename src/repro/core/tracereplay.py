"""Real-trace replay experiments: any trace file against any design point.

:class:`TraceWorkload` describes a replay declaratively (file, format,
transforms, preconditioning) and fingerprints by the trace file's
*content hash* — a trace can move or be renamed on disk without
invalidating cached sweep results, while an edited trace is always a
cache miss.  The ``replay`` sweep evaluator re-hashes the file in the
worker and refuses to run against content that no longer matches, so a
cache entry can never silently describe a different trace.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..host.traces import (TraceProfile, characterize, iter_trace,
                           limit_records, records_to_commands,
                           run_preconditioning, scale_time,
                           wrap_to_device)
from ..host.traces.precondition import PRECONDITION_MODES
from ..host.traces.records import TraceError
from ..host.workload import CommandListWorkload
from ..kernel import Simulator
from ..ssd.architecture import SsdArchitecture
from ..ssd.device import SsdDevice
from ..ssd.metrics import RunResult, run_workload
from .experiments import TABLE2_LABELS, table2_configs
from .sweep import SweepPoint, SweepRunner


def sha256_file(path: str, chunk_bytes: int = 1 << 20) -> str:
    """Streaming SHA-256 of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(chunk_bytes), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass(frozen=True)
class TraceWorkload:
    """A declarative replay: trace file + transforms + measurement mode.

    ``pattern`` overrides the WAF-model access-pattern key; the empty
    string means "decide from the trace's measured sequentiality".
    """

    path: str
    sha256: str
    fmt: str = "auto"
    honor_issue_times: bool = True
    time_scale: float = 1.0
    wrap: bool = True
    precondition: str = "none"
    max_commands: Optional[int] = None
    pattern: str = ""

    def __post_init__(self) -> None:
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if self.precondition not in PRECONDITION_MODES:
            raise ValueError(f"precondition must be one of "
                             f"{PRECONDITION_MODES}, "
                             f"got {self.precondition!r}")
        if self.pattern not in ("", "sequential", "random"):
            raise ValueError(f"pattern must be ''/sequential/random, "
                             f"got {self.pattern!r}")

    def __canonical__(self) -> Dict[str, Any]:
        """Fingerprint form: the content hash stands in for the path."""
        return {
            "__trace_workload__": {
                "sha256": self.sha256,
                "fmt": self.fmt,
                "honor_issue_times": self.honor_issue_times,
                "time_scale": self.time_scale,
                "wrap": self.wrap,
                "precondition": self.precondition,
                "max_commands": self.max_commands,
                "pattern": self.pattern,
            },
        }

    @classmethod
    def from_file(cls, path: str, **options: Any) -> "TraceWorkload":
        """Build a workload, hashing the file's current content."""
        return cls(path=path, sha256=sha256_file(path), **options)

    def with_path(self, path: str) -> "TraceWorkload":
        """The same replay against a moved/copied trace file."""
        return replace(self, path=path)


@dataclass
class ReplayOutcome:
    """What one trace replay produced."""

    result: RunResult
    profile: TraceProfile
    preconditioning_commands: int = 0


def _load_commands(workload: TraceWorkload, arch: SsdArchitecture
                   ) -> Tuple[TraceProfile, List, str]:
    """Parse + transform the trace; returns (profile, commands, pattern).

    The characterization describes the stream *as replayed* (after
    limiting, time scaling and geometry wrapping), so the report and the
    measured RunResult always refer to the same request sequence.
    """
    records = iter_trace(workload.path, fmt=workload.fmt)
    records = limit_records(records, workload.max_commands)
    if workload.time_scale != 1.0:
        records = scale_time(records, workload.time_scale)
    if workload.wrap:
        records = wrap_to_device(records, arch)
    materialized = list(records)
    if not materialized:
        raise TraceError(f"{workload.path}: trace contains no records")
    profile = characterize(materialized)
    pattern = workload.pattern or profile.dominant_pattern
    commands = list(records_to_commands(materialized))
    return profile, commands, pattern


def replay_trace(workload: TraceWorkload,
                 arch: Optional[SsdArchitecture] = None,
                 label: str = "") -> ReplayOutcome:
    """Replay one trace through one architecture, in process.

    Reads are served from preloaded pages; with ``precondition`` set the
    addressed region is filled (and, for ``steady``, partially
    rewritten) to completion before the measured window opens —
    :func:`~repro.ssd.metrics.run_workload` computes every figure
    relative to that window.
    """
    arch = arch or SsdArchitecture()
    profile, commands, pattern = _load_commands(workload, arch)
    sim = Simulator()
    device = SsdDevice(sim, arch)
    if profile.reads:
        device.preload_for_reads()
    warmup = 0
    if workload.precondition != "none":
        span_sectors = max((c.lba + c.sectors for c in commands
                            if c.sectors), default=0) or 8
        warmup = run_preconditioning(sim, device, span_sectors,
                                     mode=workload.precondition)
    result = run_workload(
        sim, device, CommandListWorkload(commands, pattern=pattern),
        label=label or f"trace/{profile.dominant_pattern}",
        honor_issue_times=workload.honor_issue_times)
    if workload.precondition != "none":
        # Preconditioned runs are in the steady regime for their whole
        # window, so the full-window figure *is* the sustained one (same
        # convention as warm-started scenario runs).
        result.sustained_mbps = result.throughput_mbps
    return ReplayOutcome(result=result, profile=profile,
                         preconditioning_commands=warmup)


def evaluate_replay_point(point: SweepPoint) -> Tuple[Dict[str, Any], int]:
    """The ``replay`` sweep evaluator (runs inside worker processes)."""
    workload = point.workload
    if not isinstance(workload, TraceWorkload):
        raise TypeError(f"replay evaluator needs a TraceWorkload, "
                        f"got {type(workload).__name__}")
    actual = sha256_file(workload.path)
    if actual != workload.sha256:
        raise TraceError(
            f"{workload.path}: content hash {actual[:12]}... does not "
            f"match the workload's {workload.sha256[:12]}... — the "
            f"trace changed since the sweep was defined")
    outcome = replay_trace(workload, arch=point.arch,
                           label=str(point.params.get("label", point.name)))
    payload = outcome.result.to_dict()
    # Wall time is machine load, not simulation output; keep payloads
    # deterministic so cached and fresh runs agree byte for byte.
    payload["wall_seconds"] = 0.0
    payload["trace_profile"] = outcome.profile.to_dict()
    payload["preconditioning_commands"] = outcome.preconditioning_commands
    return payload, outcome.result.events


def trace_sweep_points(workload: TraceWorkload,
                       configs: Optional[List[str]] = None,
                       base: Optional[SsdArchitecture] = None
                       ) -> List[SweepPoint]:
    """One replay point per Table II configuration for a single trace."""
    selected = configs or list(TABLE2_LABELS)
    return [SweepPoint(name=name, arch=arch, workload=workload,
                       evaluator="replay", params={"label": name})
            for name, arch in table2_configs(base).items()
            if name in selected]


def trace_sweep(workload: TraceWorkload,
                configs: Optional[List[str]] = None,
                base: Optional[SsdArchitecture] = None,
                runner: Optional[SweepRunner] = None
                ) -> Dict[str, Dict[str, Any]]:
    """Fan a trace replay across Table II design points.

    The sweep cache key folds in the trace's content hash, so re-running
    with an unchanged trace is all cache hits and editing the trace
    re-simulates every point.

    Raises :class:`TraceError` if any point fails, naming each failed
    point and its error — a missing key in the returned table always
    means "not requested", never "silently dropped".  Callers that want
    to inspect partial results alongside failures should drive
    :meth:`SweepRunner.run` on :func:`trace_sweep_points` directly.
    """
    runner = runner or SweepRunner(workers=1)
    result = runner.run(trace_sweep_points(workload, configs, base))
    failures = result.failures()
    if failures:
        detail = "; ".join(f"{o.name}: {o.failure.error_type}: "
                           f"{o.failure.message}" for o in failures)
        raise TraceError(f"trace sweep failed for {len(failures)} "
                         f"point(s): {detail}")
    return result.payloads()
