"""SQLite result store: durable, queryable campaign results.

The content-addressed envelope cache (:class:`~repro.core.sweep.SweepCache`)
is the source of truth for *payload bytes*; this store is the queryable
index on top — the DAVOS-style decision-support layer.  Schema:

* ``campaigns``  — one row per campaign (name, salt, point count),
* ``points``     — one row per (campaign, point): fingerprint key,
  evaluator, status, resource cost, full payload JSON,
* ``metrics``    — the payload flattened to dotted numeric leaves
  (``latency_us.p95``, ``reliability.uber``, ``trace_profile.records``…)
  so any figure can be filtered/sorted in SQL,
* ``failures``   — post-mortem record (error type, message, traceback)
  for every failed point.

Writers are idempotent (``INSERT OR REPLACE`` keyed by campaign+name):
republishing a deterministic payload never duplicates a row, which is
what makes at-least-once campaign workers publish exactly-once results.
The store opens in WAL mode with a busy timeout so concurrent workers
(processes, or hosts on a shared directory) can record as they go.
"""

from __future__ import annotations

import json
import operator
import sqlite3
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from ..ssd.metrics import json_safe
from .pareto import (ParetoEntry, entry_best, entry_cheapest_within,
                     entry_frontier)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id   TEXT PRIMARY KEY,
    name          TEXT NOT NULL,
    salt          TEXT NOT NULL,
    total_points  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    campaign_id   TEXT NOT NULL,
    name          TEXT NOT NULL,
    key           TEXT,
    evaluator     TEXT NOT NULL DEFAULT '',
    status        TEXT NOT NULL,
    cost          REAL,
    events        INTEGER NOT NULL DEFAULT 0,
    elapsed_s     REAL NOT NULL DEFAULT 0.0,
    payload       TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (campaign_id, name)
);
CREATE TABLE IF NOT EXISTS metrics (
    campaign_id   TEXT NOT NULL,
    name          TEXT NOT NULL,
    metric        TEXT NOT NULL,
    value         REAL NOT NULL,
    PRIMARY KEY (campaign_id, name, metric)
);
CREATE TABLE IF NOT EXISTS failures (
    campaign_id   TEXT NOT NULL,
    name          TEXT NOT NULL,
    error_type    TEXT NOT NULL,
    message       TEXT NOT NULL,
    traceback     TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (campaign_id, name)
);
"""

#: Comparison operators accepted by :func:`parse_constraint`, longest
#: first so ``<=`` is never mis-split as ``<``.
_OPERATORS: Tuple[Tuple[str, Callable[[float, float], bool]], ...] = (
    ("<=", operator.le), (">=", operator.ge), ("==", operator.eq),
    ("!=", operator.ne), ("<", operator.lt), (">", operator.gt),
)


def parse_constraint(text: str) -> Tuple[str, str, float]:
    """Parse ``"metric<=bound"`` into ``(metric, op, bound)``."""
    for symbol, _ in _OPERATORS:
        if symbol in text:
            metric, _, bound = text.partition(symbol)
            metric = metric.strip()
            try:
                return metric, symbol, float(bound.strip())
            except ValueError:
                break
    raise ValueError(f"cannot parse constraint {text!r}; expected "
                     f"'metric<=bound' with one of "
                     f"{[sym for sym, _ in _OPERATORS]}")


def _operator_fn(symbol: str) -> Callable[[float, float], bool]:
    for known, fn in _OPERATORS:
        if known == symbol:
            return fn
    raise ValueError(f"unknown constraint operator {symbol!r}")


def flatten_metrics(payload: Mapping[str, Any],
                    prefix: str = "") -> Dict[str, float]:
    """Flatten nested numeric leaves to dotted metric names.

    Booleans become 0/1, non-finite floats are dropped (they are ``null``
    after :func:`~repro.ssd.metrics.json_safe` anyway), strings and lists
    are skipped — metrics are things you can order by.
    """
    out: Dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(flatten_metrics(value, prefix=f"{path}."))
        elif isinstance(value, bool):
            out[path] = float(value)
        elif isinstance(value, (int, float)) and value == value \
                and value not in (float("inf"), float("-inf")):
            out[path] = float(value)
    return out


class ResultStore:
    """One SQLite database of campaign results (see module docstring).

    Each process (worker, CLI, test) opens its own instance; connections
    are lazy and WAL-journaled so concurrent writers on the same file
    serialize safely instead of erroring.
    """

    def __init__(self, path: str, timeout_s: float = 30.0):
        self.path = str(path)
        self.timeout_s = timeout_s
        self._conn: Optional[sqlite3.Connection] = None

    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            conn = sqlite3.connect(self.path, timeout=self.timeout_s)
            conn.row_factory = sqlite3.Row
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
            except sqlite3.OperationalError:
                pass  # e.g. WAL unsupported on this filesystem: defaults
            conn.execute(f"PRAGMA busy_timeout={int(self.timeout_s * 1000)}")
            with conn:
                conn.executescript(_SCHEMA)
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writers

    def record_campaign(self, campaign_id: str, salt: str,
                        total_points: int, name: str = "") -> None:
        conn = self._connection()
        with conn:
            conn.execute(
                "INSERT OR REPLACE INTO campaigns "
                "(campaign_id, name, salt, total_points) VALUES (?,?,?,?)",
                (campaign_id, name or campaign_id, salt, total_points))

    def record_point(self, campaign_id: str, name: str,
                     envelope: Mapping[str, Any],
                     key: Optional[str] = None,
                     cost: Optional[float] = None) -> None:
        """Record one published envelope (idempotent).

        ``envelope`` is the cache envelope produced by the sweep
        evaluators: ``payload`` + ``events`` + ``elapsed_s`` and an
        optional ``failure`` record.  The payload is re-sanitized with
        :func:`json_safe` so the stored JSON never carries ``Infinity`` /
        ``NaN`` tokens regardless of what the evaluator returned.
        """
        payload = json_safe(dict(envelope.get("payload") or {}))
        failure = envelope.get("failure")
        status = "failed" if failure else "ok"
        conn = self._connection()
        with conn:
            conn.execute(
                "INSERT OR REPLACE INTO points (campaign_id, name, key, "
                "evaluator, status, cost, events, elapsed_s, payload) "
                "VALUES (?,?,?,?,?,?,?,?,?)",
                (campaign_id, name, key,
                 str(envelope.get("evaluator", "")), status, cost,
                 int(envelope.get("events", 0)),
                 float(envelope.get("elapsed_s", 0.0)),
                 json.dumps(payload, sort_keys=True)))
            conn.execute("DELETE FROM metrics WHERE campaign_id=? AND "
                         "name=?", (campaign_id, name))
            conn.executemany(
                "INSERT OR REPLACE INTO metrics VALUES (?,?,?,?)",
                [(campaign_id, name, metric, value)
                 for metric, value in sorted(
                     flatten_metrics(payload).items())])
            conn.execute("DELETE FROM failures WHERE campaign_id=? AND "
                         "name=?", (campaign_id, name))
            if failure:
                conn.execute(
                    "INSERT OR REPLACE INTO failures VALUES (?,?,?,?,?)",
                    (campaign_id, name,
                     str(failure.get("error_type", "Exception")),
                     str(failure.get("message", "")),
                     str(failure.get("traceback", ""))))

    # ------------------------------------------------------------------
    # Readers

    def campaigns(self) -> List[Dict[str, Any]]:
        conn = self._connection()
        return [dict(row) for row in conn.execute(
            "SELECT * FROM campaigns ORDER BY campaign_id")]

    def points(self, campaign_id: str) -> List[Dict[str, Any]]:
        conn = self._connection()
        return [dict(row) for row in conn.execute(
            "SELECT * FROM points WHERE campaign_id=? ORDER BY name",
            (campaign_id,))]

    def payloads(self, campaign_id: str,
                 include_failed: bool = False) -> Dict[str, Dict[str, Any]]:
        """``{name: payload}`` for the campaign, name-sorted."""
        return {row["name"]: json.loads(row["payload"])
                for row in self.points(campaign_id)
                if include_failed or row["status"] == "ok"}

    def metrics(self, campaign_id: str) -> Dict[str, Dict[str, float]]:
        """``{name: {metric: value}}`` for successful points."""
        conn = self._connection()
        names = {row["name"] for row in conn.execute(
            "SELECT name FROM points WHERE campaign_id=? AND status='ok'",
            (campaign_id,))}
        table: Dict[str, Dict[str, float]] = {name: {} for name in
                                              sorted(names)}
        for row in conn.execute(
                "SELECT name, metric, value FROM metrics WHERE "
                "campaign_id=? ORDER BY name, metric", (campaign_id,)):
            if row["name"] in table:
                table[row["name"]][row["metric"]] = row["value"]
        return table

    def failures(self, campaign_id: str) -> List[Dict[str, Any]]:
        conn = self._connection()
        return [dict(row) for row in conn.execute(
            "SELECT * FROM failures WHERE campaign_id=? ORDER BY name",
            (campaign_id,))]

    def status_counts(self, campaign_id: str) -> Dict[str, int]:
        conn = self._connection()
        counts = {"ok": 0, "failed": 0}
        for row in conn.execute(
                "SELECT status, COUNT(*) AS n FROM points WHERE "
                "campaign_id=? GROUP BY status", (campaign_id,)):
            counts[row["status"]] = row["n"]
        return counts

    def metric_names(self, campaign_id: str) -> List[str]:
        conn = self._connection()
        return [row["metric"] for row in conn.execute(
            "SELECT DISTINCT metric FROM metrics WHERE campaign_id=? "
            "ORDER BY metric", (campaign_id,))]

    # ------------------------------------------------------------------
    # Decision support

    def entries(self, campaign_id: str, metric: str,
                cost_metric: Optional[str] = None) -> List[ParetoEntry]:
        """(name, cost, value) triples for ranking.

        ``cost`` comes from the points table (the resource cost recorded
        at campaign creation) unless ``cost_metric`` names a payload
        metric to use instead.  Points missing either figure are skipped
        — they cannot be ranked.
        """
        metrics = self.metrics(campaign_id)
        costs: Dict[str, Optional[float]]
        if cost_metric is not None:
            costs = {name: values.get(cost_metric)
                     for name, values in metrics.items()}
        else:
            costs = {row["name"]: row["cost"]
                     for row in self.points(campaign_id)}
        entries = []
        for name, values in metrics.items():
            cost, value = costs.get(name), values.get(metric)
            if cost is None or value is None:
                continue
            entries.append(ParetoEntry(name=name, cost=float(cost),
                                       value=float(value)))
        return sorted(entries, key=lambda e: e.name)

    def pareto_frontier(self, campaign_id: str, metric: str,
                        cost_metric: Optional[str] = None
                        ) -> List[ParetoEntry]:
        """Non-dominated points (cost down, metric up); the SQL-backed
        twin of :meth:`ExplorationResult.pareto_frontier`."""
        return entry_frontier(self.entries(campaign_id, metric,
                                           cost_metric))

    def cheapest_within(self, campaign_id: str, metric: str,
                        fraction: float = 0.95,
                        cost_metric: Optional[str] = None) -> ParetoEntry:
        return entry_cheapest_within(
            self.entries(campaign_id, metric, cost_metric), fraction)

    def best_under_constraint(self, campaign_id: str, metric: str,
                              constraints: Sequence[Tuple[str, str, float]]
                              = (), cost_metric: Optional[str] = None
                              ) -> Optional[ParetoEntry]:
        """Best ``metric`` among points satisfying every constraint.

        Constraints are ``(metric, op, bound)`` triples as produced by
        :func:`parse_constraint`; a point missing a constrained metric is
        infeasible.  Returns ``None`` when nothing qualifies.
        """
        metrics = self.metrics(campaign_id)
        feasible = []
        for entry in self.entries(campaign_id, metric, cost_metric):
            values = metrics.get(entry.name, {})
            ok = True
            for constrained, symbol, bound in constraints:
                value = values.get(constrained)
                if value is None or not _operator_fn(symbol)(value, bound):
                    ok = False
                    break
            if ok:
                feasible.append(entry)
        return entry_best(feasible) if feasible else None

    def query(self, campaign_id: str, metric: str,
              where: Sequence[Tuple[str, str, float]] = (),
              top: Optional[int] = None, ascending: bool = False
              ) -> List[Tuple[str, float]]:
        """``(name, value)`` rows ordered by ``metric``, filtered by
        ``where`` constraints; ties break by name."""
        metrics = self.metrics(campaign_id)
        rows: List[Tuple[str, float]] = []
        for name, values in metrics.items():
            value = values.get(metric)
            if value is None:
                continue
            keep = True
            for constrained, symbol, bound in where:
                other = values.get(constrained)
                if other is None or not _operator_fn(symbol)(other, bound):
                    keep = False
                    break
            if keep:
                rows.append((name, value))
        rows.sort(key=lambda row: (row[1] if ascending else -row[1],
                                   row[0]))
        return rows[:top] if top else rows
