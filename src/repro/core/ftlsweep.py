"""FTL scheme-zoo sweep: WAF / latency / mapping footprint vs DRAM budget.

The paper's FTL layer is plug & play firmware; this experiment makes the
*mapping scheme* and its controller-DRAM cost a sweepable design axis.
Each point replays the bundled sample trace (or any
:class:`~repro.core.tracereplay.TraceWorkload`) through a timed
:class:`~repro.ssd.ftl_device.FtlSsdDevice` running one registered
scheme, preconditioned into the steady (GC-active) regime, and reports
the measured WAF, latency and the scheme's mapping footprint side by
side.  DRAM-sensitive schemes (dftl) are expanded across a ladder of
``ftl_dram_bytes`` budgets so the table charts the footprint/WAF/latency
trade-off the scheme exists to make.

:func:`analytic_waf_check` closes the loop against the analytic model:
the page-map reference, driven to steady state on uniform random writes,
must measure a WAF between 1.0 and Hu et al.'s LRU closed form (greedy
cleaning beats LRU) and near the block-level greedy simulation.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..ftl.pagemap import FlashBackend, PageMapFtl
from ..ftl.schemes import get_scheme, scheme_footprint, scheme_names
from ..ftl.waf import GreedyWafSimulator, spare_factor, waf_lru_analytic
from ..host.traces.records import TraceError
from ..host.workload import CommandListWorkload
from ..kernel import Simulator
from ..ssd.architecture import SsdArchitecture
from ..ssd.ftl_device import FtlSsdDevice
from ..ssd.metrics import run_workload
from .sweep import SweepPoint, SweepRunner
from .tracereplay import TraceWorkload, _load_commands, sha256_file

#: Reduced block count per plane for FTL sweep points: the full 2048
#: blocks/plane would need multi-GiB traces before GC ever runs; eight
#: keeps the whole physical space inside a short trace's reach.
DEFAULT_BLOCKS_PER_PLANE = 8

#: Logical utilization for sweep points — high enough that steady-state
#: preconditioning parks every die near the GC watermark, low enough to
#: satisfy the FTL's spare-block floor on the reduced geometry.
DEFAULT_UTILIZATION = 0.75

#: Random overwrites (as a fraction of the logical space) applied after
#: the sequential fill so block validity is mixed when measurement opens.
_PRECONDITION_OVERWRITE_FRACTION = 0.5
_PRECONDITION_SEED = 0xF71


def ftl_base_architecture() -> SsdArchitecture:
    """Default design point for FTL sweeps: a 4-die "FTL microscope".

    The full 32-die default spreads a short trace so thin that no die
    ever reaches its GC watermark inside the measured window; four dies
    concentrate the same traffic enough that garbage collection, RMW and
    translation paging all show up against the bundled sample trace.
    """
    return SsdArchitecture().scaled(n_channels=2, n_ways=2, dies_per_way=1,
                                    n_ddr_buffers=2)


def _precondition_steady(device: FtlSsdDevice) -> None:
    """Drive the FTL to the steady regime before the timed window.

    Sequential fill of the whole logical space, then seeded random
    overwrites to scatter invalid pages across blocks.  All of it is
    instantaneous state setup: the journal is discarded (nothing is
    timed) and the FTL's accounting is zeroed so the measured window
    starts clean — same convention as ``preload_for_reads``.
    """
    ftl = device.ftl
    for lpn in range(device.logical_pages):
        ftl.write(lpn)
    rng = random.Random(_PRECONDITION_SEED)
    for __ in range(int(device.logical_pages
                        * _PRECONDITION_OVERWRITE_FRACTION)):
        ftl.write(rng.randrange(device.logical_pages))
    device.backend.drain()
    device.sync_nand_to_ftl()
    for counter in ("host_writes", "gc_relocations",
                    "static_wl_relocations", "static_wl_migrations",
                    "rmw_relocations", "translation_writes",
                    "gc_deferrals", "gc_stalls", "gc_spills",
                    "write_redirects",
                    "trims", "cmt_hits", "cmt_misses",
                    "translation_reads"):
        if hasattr(ftl, counter):
            setattr(ftl, counter, 0)


def evaluate_ftl_point(point: SweepPoint) -> Tuple[Dict[str, Any], int]:
    """The ``ftl`` sweep evaluator (runs inside worker processes)."""
    workload = point.workload
    if not isinstance(workload, TraceWorkload):
        raise TypeError(f"ftl evaluator needs a TraceWorkload, "
                        f"got {type(workload).__name__}")
    actual = sha256_file(workload.path)
    if actual != workload.sha256:
        raise TraceError(
            f"{workload.path}: content hash {actual[:12]}... does not "
            f"match the workload's {workload.sha256[:12]}... — the "
            f"trace changed since the sweep was defined")
    params = dict(point.params)
    arch = point.arch
    profile, commands, pattern = _load_commands(workload, arch)
    sim = Simulator()
    device = FtlSsdDevice(
        sim, arch,
        logical_utilization=float(params.get("logical_utilization",
                                             DEFAULT_UTILIZATION)),
        ftl_blocks_per_plane=int(params.get("ftl_blocks_per_plane",
                                            DEFAULT_BLOCKS_PER_PLANE)))
    if params.get("precondition", True):
        _precondition_steady(device)
    result = run_workload(
        sim, device, CommandListWorkload(commands, pattern=pattern),
        label=str(params.get("label", point.name)),
        honor_issue_times=workload.honor_issue_times)
    payload = result.to_dict()
    # Wall time is machine load, not simulation output; keep payloads
    # deterministic so cached and fresh runs agree byte for byte.
    payload["wall_seconds"] = 0.0
    return payload, result.events


def default_dram_budgets(arch: Optional[SsdArchitecture] = None,
                         logical_utilization: float = DEFAULT_UTILIZATION,
                         blocks_per_plane: int = DEFAULT_BLOCKS_PER_PLANE
                         ) -> List[int]:
    """A ladder of ``ftl_dram_bytes`` budgets spanning the cached range.

    Derived from the geometry so the smallest budget caches a single
    translation page, the largest holds the whole translation set
    (directory + every translation page), and the middle sits halfway.
    """
    arch = arch or ftl_base_architecture()
    geometry = arch.geometry
    physical_pages = (arch.total_dies * geometry.planes_per_die
                      * blocks_per_plane * geometry.pages_per_block)
    data_pages = int(physical_pages * logical_utilization)
    footprint = scheme_footprint("dftl", data_pages,
                                 page_bytes=geometry.page_bytes)
    full = footprint.dram_bytes
    entries_per_tpage = max(1, geometry.page_bytes // footprint.entry_bytes)
    tpages = -(-data_pages // entries_per_tpage)
    minimum = (tpages * footprint.entry_bytes
               + entries_per_tpage * footprint.entry_bytes)
    return sorted({minimum, (minimum + full) // 2, full})


def ftl_sweep_points(workload: TraceWorkload,
                     schemes: Optional[List[str]] = None,
                     dram_budgets: Optional[List[int]] = None,
                     base: Optional[SsdArchitecture] = None,
                     logical_utilization: float = DEFAULT_UTILIZATION,
                     blocks_per_plane: int = DEFAULT_BLOCKS_PER_PLANE
                     ) -> List[SweepPoint]:
    """One sweep point per scheme — DRAM-sensitive schemes get one per
    budget in ``dram_budgets`` (named ``scheme@<KiB>``)."""
    arch = base or ftl_base_architecture()
    selected = schemes or scheme_names()
    budgets = dram_budgets if dram_budgets is not None else \
        default_dram_budgets(arch, logical_utilization, blocks_per_plane)
    params = {"logical_utilization": logical_utilization,
              "ftl_blocks_per_plane": blocks_per_plane}
    points: List[SweepPoint] = []
    for name in selected:
        scheme = get_scheme(name)   # raises on unknown names up front
        if scheme.dram_sensitive and budgets:
            for budget in budgets:
                label = f"{name}@{budget // 1024}KiB"
                points.append(SweepPoint(
                    name=label,
                    arch=arch.scaled(ftl_scheme=name,
                                     ftl_dram_bytes=int(budget)),
                    workload=workload, evaluator="ftl",
                    params={**params, "label": label}))
        else:
            points.append(SweepPoint(
                name=name, arch=arch.scaled(ftl_scheme=name),
                workload=workload, evaluator="ftl",
                params={**params, "label": name}))
    return points


def ftl_sweep(workload: TraceWorkload,
              schemes: Optional[List[str]] = None,
              dram_budgets: Optional[List[int]] = None,
              base: Optional[SsdArchitecture] = None,
              runner: Optional[SweepRunner] = None,
              logical_utilization: float = DEFAULT_UTILIZATION,
              blocks_per_plane: int = DEFAULT_BLOCKS_PER_PLANE
              ) -> Dict[str, Dict[str, Any]]:
    """Replay one trace across the FTL scheme zoo; {point name: payload}.

    Raises :class:`TraceError` if any point fails, naming each failed
    point — a missing key always means "not requested", never "silently
    dropped".
    """
    runner = runner or SweepRunner(workers=1)
    result = runner.run(ftl_sweep_points(
        workload, schemes=schemes, dram_budgets=dram_budgets, base=base,
        logical_utilization=logical_utilization,
        blocks_per_plane=blocks_per_plane))
    failures = result.failures()
    if failures:
        detail = "; ".join(f"{o.name}: {o.failure.error_type}: "
                           f"{o.failure.message}" for o in failures)
        raise TraceError(f"ftl sweep failed for {len(failures)} "
                         f"point(s): {detail}")
    return result.payloads()


def ftl_sweep_table(payloads: Dict[str, Dict[str, Any]]
                    ) -> List[Dict[str, Any]]:
    """Flatten sweep payloads into chartable trade-off rows.

    One row per point: scheme, DRAM/table/flash bytes, cached fraction,
    measured WAF, throughput and latency — the columns of the
    EXPERIMENTS.md trade-off table.
    """
    rows: List[Dict[str, Any]] = []
    for name, payload in payloads.items():
        ftl = payload.get("ftl", {})
        footprint = ftl.get("footprint", {})
        rows.append({
            "point": name,
            "scheme": ftl.get("scheme", "?"),
            "waf": ftl.get("waf"),
            "host_writes": ftl.get("host_writes", 0),
            "gc_relocations": ftl.get("gc_relocations", 0),
            "rmw_relocations": ftl.get("rmw_relocations", 0),
            "translation_writes": ftl.get("translation_writes", 0),
            "gc_deferrals": ftl.get("gc_deferrals", 0),
            "table_bytes": footprint.get("table_bytes"),
            "dram_bytes": footprint.get("dram_bytes"),
            "flash_bytes": footprint.get("flash_bytes"),
            "cached_fraction": footprint.get("cached_fraction"),
            "throughput_mbps": payload.get("throughput_mbps"),
            "mean_latency_us": payload.get("latency_us", {}).get("mean"),
            "p99_latency_us": payload.get("latency_us", {}).get("p99"),
        })
    return rows


def analytic_waf_check(utilization: float = DEFAULT_UTILIZATION,
                       n_dies: int = 2, planes: int = 1,
                       blocks: int = 64, pages: int = 32,
                       write_multiplier: float = 4.0,
                       seed: int = 20260808) -> Dict[str, Any]:
    """Validate the page-map FTL against the analytic WAF model.

    Drives the real :class:`~repro.ftl.pagemap.PageMapFtl` to steady
    state on uniform random writes and compares its measured WAF with

    * Hu et al.'s LRU closed form ``(1+s)/(2s)`` — the first-order
      approximation at matched over-provisioning, and
    * the block-level :class:`~repro.ftl.waf.GreedyWafSimulator` — the
      paper's embedded abstraction.

    The real FTL runs a little above both: per-die pools, the active
    block and the GC watermark all shave effective spare capacity that
    the single-pool models keep.  ``within_bound`` therefore asserts the
    measured WAF lands within 20% of the greedy simulation and under
    1.25x the LRU closed form — close enough that the schemes' relative
    ordering in the sweep table is trustworthy, loose enough to absorb
    the structural overhead.
    """
    backend = FlashBackend(n_dies, planes, blocks, pages)
    physical_pages = n_dies * planes * blocks * pages
    logical_pages = int(physical_pages * utilization)
    ftl = PageMapFtl(backend, logical_pages)
    rng = random.Random(seed)
    for lpn in range(logical_pages):     # fill
        ftl.write(lpn)
    total_writes = int(logical_pages * write_multiplier)
    for __ in range(total_writes):       # reach steady state
        ftl.write(rng.randrange(logical_pages))
    base_host, base_gc = ftl.host_writes, ftl.gc_relocations
    for __ in range(total_writes):       # measured window
        ftl.write(rng.randrange(logical_pages))
    host = ftl.host_writes - base_host
    relocated = ftl.gc_relocations - base_gc
    measured = (host + relocated) / host

    spare = spare_factor(physical_pages, logical_pages)
    lru_bound = waf_lru_analytic(spare)
    greedy = GreedyWafSimulator(
        n_dies * planes * blocks, pages, logical_pages,
        gc_threshold_blocks=2).measure_steady_state("random")
    deviation = abs(measured - greedy) / greedy
    return {
        "utilization": utilization,
        "spare_factor": spare,
        "measured_waf": measured,
        "greedy_sim_waf": greedy,
        "lru_analytic_waf": lru_bound,
        "deviation_vs_greedy": deviation,
        "within_bound": (1.0 <= measured <= lru_bound * 1.25
                         and deviation <= 0.20),
    }
