"""Durable campaign engine: leased work-queue, resumable manifests.

A *campaign* is a sweep that survives anything: its point set, leases,
results and result database all live in one on-disk directory that any
number of worker processes — in one parent, or independent ``repro
campaign worker`` processes on hosts sharing the directory — can drain
cooperatively.  Layout::

    <campaign dir>/
        manifest.json      point names + fingerprints + salt (identity)
        points.pkl         the SweepPoint objects workers re-load
        queue/             lease files, one per in-flight point
        results/           content-addressed envelopes (SweepCache format)
        campaign.sqlite    the queryable result store (repro.core.store)

Correctness model (locked by the crash/resume test tier):

* **Claiming** a point creates ``queue/<key>.lease`` with
  ``O_CREAT | O_EXCL`` — exactly one worker wins.  Leases carry owner,
  pid, host and an expiry; a heartbeat thread extends the expiry while
  the point simulates.
* **Reaping** an orphaned lease (worker killed mid-point) renames the
  lease file to a tombstone — ``rename`` succeeds for exactly one
  reaper, so an expired point re-enters the queue exactly once per
  expiry.  Leases whose owner pid is dead on *this* host are reaped
  immediately; cross-host orphans wait out the TTL.
* **Publishing** writes the envelope with an atomic replace and records
  it in SQLite with ``INSERT OR REPLACE``.  Payloads are deterministic
  functions of the fingerprint (the sweep determinism contract), so
  execution is at-least-once but the published result set is
  exactly-once and byte-identical to a serial
  :class:`~repro.core.sweep.SweepRunner` run of the same grid.
* **Resuming** never recomputes a published point: a new run (or a new
  worker) skips every key that already has a successful envelope.
  Recorded *failures* are post-mortem data, not results — a resumed
  :class:`CampaignRunner` clears and re-runs them, exactly like
  ``SweepRunner --resume``.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from .explorer import ResourceCostModel
from .store import ResultStore
from .sweep import (CODE_VERSION, PointFailure, PointOutcome, SweepCache,
                    SweepPoint, SweepResult, SweepSummary, _evaluate_guarded,
                    fingerprint)

#: Manifest schema version (bump on incompatible layout changes).
CAMPAIGN_FORMAT = 1

#: Default lease time-to-live.  Workers heartbeat at TTL/4, so a live
#: worker never expires; a killed one is reaped within one TTL (or
#: immediately by a same-host reaper that sees its pid is gone).
DEFAULT_LEASE_TTL_S = 60.0


class CampaignError(RuntimeError):
    """A campaign directory is inconsistent with what the caller wants."""


def _atomic_write(path: str, data: bytes) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
    os.replace(tmp, path)


def _worker_name() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


# ----------------------------------------------------------------------
# Leases


@dataclass(frozen=True)
class Lease:
    """One worker's claim on one point."""

    key: str
    owner: str
    pid: int
    host: str
    expires_unix: float
    generation: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {"key": self.key, "owner": self.owner, "pid": self.pid,
                "host": self.host, "expires_unix": self.expires_unix,
                "generation": self.generation}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Lease":
        return cls(key=str(data["key"]), owner=str(data.get("owner", "")),
                   pid=int(data.get("pid", 0)),
                   host=str(data.get("host", "")),
                   expires_unix=float(data.get("expires_unix", 0.0)),
                   generation=int(data.get("generation", 0)))

    def expired(self, now: Optional[float] = None) -> bool:
        return (now if now is not None else time.time()) \
            >= self.expires_unix


class LeaseQueue:
    """Filesystem lease table: one ``<key>.lease`` file per claim.

    All mutations are single-syscall atomic (exclusive create, rename),
    so the queue needs no locks and works across processes and across
    hosts sharing the directory.
    """

    def __init__(self, directory: str, ttl_s: float = DEFAULT_LEASE_TTL_S):
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.directory = str(directory)
        self.ttl_s = ttl_s
        self._reap_counter = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.lease")

    def claim(self, key: str, owner: Optional[str] = None
              ) -> Optional[Lease]:
        """Claim a point; ``None`` if someone else holds it."""
        os.makedirs(self.directory, exist_ok=True)
        lease = Lease(key=key, owner=owner or _worker_name(),
                      pid=os.getpid(), host=socket.gethostname(),
                      expires_unix=time.time() + self.ttl_s)
        try:
            descriptor = os.open(self._path(key),
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(lease.to_dict(), handle)
        return lease

    def peek(self, key: str) -> Optional[Lease]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                return Lease.from_dict(json.load(handle))
        except (OSError, ValueError, KeyError):
            return None

    def heartbeat(self, lease: Lease) -> Optional[Lease]:
        """Extend a lease we still own; ``None`` if it was lost.

        Ownership is re-checked from disk first so a reaped-and-reclaimed
        point is not clobbered by a worker that lost its lease but kept
        running (its eventual publish is idempotent anyway).
        """
        current = self.peek(lease.key)
        if current is None or current.owner != lease.owner \
                or current.generation != lease.generation:
            return None
        renewed = Lease(key=lease.key, owner=lease.owner, pid=lease.pid,
                        host=lease.host,
                        expires_unix=time.time() + self.ttl_s,
                        generation=lease.generation)
        _atomic_write(self._path(lease.key),
                      json.dumps(renewed.to_dict()).encode("utf-8"))
        return renewed

    def release(self, lease: Lease) -> None:
        try:
            os.unlink(self._path(lease.key))
        except OSError:
            pass

    def active(self) -> Dict[str, Lease]:
        """Live (unexpired) leases by key."""
        leases: Dict[str, Lease] = {}
        now = time.time()
        try:
            names = os.listdir(self.directory)
        except OSError:
            return leases
        for name in sorted(names):
            if not name.endswith(".lease"):
                continue
            lease = self.peek(name[:-len(".lease")])
            if lease is not None and not lease.expired(now):
                leases[lease.key] = lease
        return leases

    def _reap(self, key: str) -> bool:
        """Atomically remove one lease; True for the single winner."""
        self._reap_counter += 1
        tombstone = os.path.join(
            self.directory,
            f".reaped-{os.getpid()}-{self._reap_counter}-{key[:16]}")
        try:
            os.rename(self._path(key), tombstone)
        except OSError:
            return False  # someone else reaped (or released) it first
        try:
            os.unlink(tombstone)
        except OSError:
            pass
        return True

    def reap_expired(self, now: Optional[float] = None) -> List[str]:
        """Re-queue every expired lease, each exactly once.

        The rename-to-tombstone protocol guarantees that when several
        workers race to reap the same orphan, exactly one wins; the
        point then becomes claimable again through the normal exclusive
        create.
        """
        reaped: List[str] = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return reaped
        for name in names:
            if not name.endswith(".lease"):
                continue
            key = name[:-len(".lease")]
            lease = self.peek(key)
            if lease is not None and lease.expired(now) \
                    and self._reap(key):
                reaped.append(key)
        return reaped

    def reap_dead(self) -> List[str]:
        """Reap leases whose owner process is gone on *this* host.

        A ``kill -9``'d worker leaves its lease behind; same-host
        recovery need not wait out the TTL because the pid liveness
        check is authoritative here.  Cross-host leases are left for
        :meth:`reap_expired`.
        """
        reaped: List[str] = []
        host = socket.gethostname()
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return reaped
        for name in names:
            if not name.endswith(".lease"):
                continue
            key = name[:-len(".lease")]
            lease = self.peek(key)
            if lease is None or lease.host != host \
                    or lease.pid == os.getpid():
                continue
            try:
                os.kill(lease.pid, 0)
            except ProcessLookupError:
                if self._reap(key):
                    reaped.append(key)
            except OSError:
                continue  # pid exists but not ours to signal: leave it
        return reaped


class _LeaseKeeper:
    """Daemon thread that heartbeats one lease while a point simulates."""

    def __init__(self, queue: LeaseQueue, lease: Lease):
        self.queue = queue
        self.lease = lease
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        lease = self.lease
        interval = max(0.05, self.queue.ttl_s / 4.0)
        while not self._stop.wait(interval):
            renewed = self.queue.heartbeat(lease)
            if renewed is None:
                return  # lease lost; publish stays idempotent
            lease = renewed

    def __enter__(self) -> "_LeaseKeeper":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Campaign directory


@dataclass
class CampaignStatus:
    """A point-in-time accounting of a campaign directory."""

    name: str
    total: int
    published: int
    failed: int
    leased: int
    pending: int
    leases: Dict[str, Lease] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "total": self.total,
            "published": self.published, "failed": self.failed,
            "leased": self.leased, "pending": self.pending,
            "leases": {key: lease.to_dict()
                       for key, lease in sorted(self.leases.items())},
        }

    def format(self) -> str:
        lines = [f"campaign : {self.name}",
                 f"points   : {self.total} total — {self.published} "
                 f"published, {self.failed} failed, {self.leased} leased, "
                 f"{self.pending} pending"]
        for lease in self.leases.values():
            remaining = lease.expires_unix - time.time()
            lines.append(f"lease    : {lease.owner} holds "
                         f"{lease.key[:12]}… (expires in "
                         f"{max(0.0, remaining):.0f}s)")
        return "\n".join(lines)


class Campaign:
    """One campaign directory: manifest + points + queue + results + DB."""

    def __init__(self, directory: str):
        self.directory = str(directory)
        self.manifest_path = os.path.join(self.directory, "manifest.json")
        self.points_path = os.path.join(self.directory, "points.pkl")
        self.db_path = os.path.join(self.directory, "campaign.sqlite")
        self.cache = SweepCache(os.path.join(self.directory, "results"))
        self.queue_dir = os.path.join(self.directory, "queue")

    # -- identity ------------------------------------------------------
    @property
    def exists(self) -> bool:
        return os.path.exists(self.manifest_path)

    @classmethod
    def open(cls, directory: str) -> "Campaign":
        """Open an existing campaign; raise if none lives there."""
        campaign = cls(directory)
        if not campaign.exists:
            raise CampaignError(
                f"{directory}: no campaign manifest — create one with "
                f"CampaignRunner or 'repro campaign run'")
        return campaign

    def load_manifest(self) -> Dict[str, Any]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as error:
            raise CampaignError(
                f"{self.manifest_path}: unreadable campaign manifest "
                f"({error})") from error
        if manifest.get("format") != CAMPAIGN_FORMAT:
            raise CampaignError(
                f"{self.manifest_path}: manifest format "
                f"{manifest.get('format')!r} != {CAMPAIGN_FORMAT} — "
                f"created by an incompatible version")
        return manifest

    def load_points(self) -> List[SweepPoint]:
        with open(self.points_path, "rb") as handle:
            return pickle.load(handle)

    def store(self) -> ResultStore:
        return ResultStore(self.db_path)

    # -- creation / resume ---------------------------------------------
    @classmethod
    def ensure(cls, directory: str, points: Sequence[SweepPoint],
               salt: str = CODE_VERSION, name: str = "campaign",
               cost_model: Optional[ResourceCostModel] = None
               ) -> "Campaign":
        """Create the campaign, or verify+extend an existing one.

        Resuming with the same point set is the no-op fast path.  New
        names are appended (successive-halving promotions land in the
        same campaign); a name already registered under a *different*
        fingerprint raises — same name + same inputs is the resume
        guarantee, so a changed fingerprint means the caller changed the
        experiment and should use a fresh directory.
        """
        campaign = cls(directory)
        os.makedirs(campaign.queue_dir, exist_ok=True)
        os.makedirs(campaign.cache.directory, exist_ok=True)
        fresh = _points_document(points, salt)
        if not campaign.exists:
            manifest = {"format": CAMPAIGN_FORMAT, "name": name,
                        "salt": salt, "points": fresh}
            _atomic_write(campaign.points_path, pickle.dumps(list(points)))
            _atomic_write(campaign.manifest_path,
                          json.dumps(manifest, indent=2,
                                     sort_keys=True).encode("utf-8"))
        else:
            manifest = campaign.load_manifest()
            if manifest.get("salt") != salt:
                raise CampaignError(
                    f"{directory}: campaign salt "
                    f"{manifest.get('salt')!r} != {salt!r} — the code "
                    f"version changed; start a fresh campaign directory")
            known = {entry["name"]: entry["key"]
                     for entry in manifest["points"]}
            by_name: Dict[str, SweepPoint] = {}
            for point in points:
                by_name.setdefault(point.name, point)
            added = []
            for entry in fresh:
                if entry["name"] in known:
                    if known[entry["name"]] != entry["key"]:
                        raise CampaignError(
                            f"{directory}: point {entry['name']!r} is "
                            f"already registered with a different "
                            f"fingerprint — the experiment changed; use "
                            f"a fresh campaign directory")
                else:
                    added.append((by_name[entry["name"]], entry))
            if added:
                existing = campaign.load_points()
                _atomic_write(campaign.points_path,
                              pickle.dumps(existing
                                           + [point for point, _ in added]))
                manifest["points"] = manifest["points"] \
                    + [entry for _, entry in added]
                _atomic_write(campaign.manifest_path,
                              json.dumps(manifest, indent=2,
                                         sort_keys=True).encode("utf-8"))
        manifest = campaign.load_manifest()
        with campaign.store() as store:
            store.record_campaign(manifest["name"], salt,
                                  len(manifest["points"]),
                                  name=manifest["name"])
        return campaign

    # -- state ---------------------------------------------------------
    def published_envelope(self, key: str) -> Optional[Dict[str, Any]]:
        """The successful envelope for ``key``, if one is published."""
        envelope = self.cache.load(key)
        if envelope is None or envelope.get("failure") is not None:
            return None
        return envelope

    def clear_failure_envelopes(self) -> int:
        """Drop recorded failures so a resumed run re-executes them."""
        manifest = self.load_manifest()
        cleared = 0
        for entry in manifest["points"]:
            envelope = self.cache.load(entry["key"])
            if envelope is not None and envelope.get("failure") is not None:
                try:
                    os.unlink(os.path.join(self.cache.directory,
                                           f"{entry['key']}.json"))
                    cleared += 1
                except OSError:
                    pass
        return cleared

    def publish(self, point: SweepPoint, key: str,
                envelope: Dict[str, Any],
                store: Optional[ResultStore] = None,
                cost_model: Optional[ResourceCostModel] = None) -> None:
        """Atomically publish one envelope + index it in the store."""
        self.cache.store(key, envelope)
        manifest = self.load_manifest()
        owns_store = store is None
        store = store or self.store()
        try:
            store.record_point(
                manifest["name"], point.name, envelope, key=key,
                cost=_point_cost(point,
                                 cost_model or ResourceCostModel()))
        finally:
            if owns_store:
                store.close()

    def status(self, ttl_s: float = DEFAULT_LEASE_TTL_S) -> CampaignStatus:
        manifest = self.load_manifest()
        queue = LeaseQueue(self.queue_dir, ttl_s=ttl_s)
        leases = queue.active()
        published = failed = leased = 0
        for entry in manifest["points"]:
            envelope = self.cache.load(entry["key"])
            if envelope is not None:
                if envelope.get("failure") is None:
                    published += 1
                else:
                    failed += 1
            elif entry["key"] in leases:
                leased += 1
        total = len(manifest["points"])
        return CampaignStatus(
            name=manifest["name"], total=total, published=published,
            failed=failed, leased=leased,
            pending=total - published - failed - leased, leases=leases)


def _points_document(points: Sequence[SweepPoint],
                     salt: str) -> List[Dict[str, str]]:
    """Manifest entries; campaigns require fingerprintable, unique names."""
    seen: Dict[str, str] = {}
    document = []
    for point in points:
        try:
            key = fingerprint(point, salt)
        except TypeError as error:
            raise CampaignError(
                f"point {point.name!r} is not fingerprintable ({error}); "
                f"campaigns need content-addressed keys") from error
        if point.name in seen:
            if seen[point.name] != key:
                raise CampaignError(
                    f"duplicate point name {point.name!r} with differing "
                    f"fingerprints in one campaign")
            continue
        seen[point.name] = key
        document.append({"name": point.name, "key": key})
    return document


def _point_cost(point: SweepPoint,
                model: ResourceCostModel) -> Optional[float]:
    """Resource cost when the point's arch supports the cost model."""
    arch = point.arch
    if all(hasattr(arch, attr) for attr in
           ("n_ddr_buffers", "n_channels", "n_ways", "total_dies")):
        return model.cost(arch)
    return None


# ----------------------------------------------------------------------
# Worker loop


def run_worker(directory: str, worker_id: Optional[str] = None,
               lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
               timeout_s: Optional[float] = None,
               poll_s: float = 0.05,
               points: Optional[Sequence[SweepPoint]] = None,
               on_point: Optional[Callable[[SweepPoint, str,
                                            Dict[str, Any]], None]] = None
               ) -> int:
    """Drain a campaign: claim → evaluate → publish, until done.

    Runs until every manifest point has an envelope (success *or*
    failure — failed points are post-mortem data for this run; a new
    :class:`CampaignRunner` run clears and retries them).  Safe to run
    any number of workers concurrently against the same directory; this
    is also the entry point of ``repro campaign worker``.  Returns the
    number of points this worker executed.
    """
    campaign = Campaign.open(directory)
    manifest = campaign.load_manifest()
    salt = manifest["salt"]
    all_points = list(points) if points is not None \
        else campaign.load_points()
    keys = {point.name: fingerprint(point, salt) for point in all_points}
    queue = LeaseQueue(campaign.queue_dir, ttl_s=lease_ttl_s)
    owner = worker_id or _worker_name()
    executed = 0
    with campaign.store() as store:
        while True:
            claimed_any = False
            missing = 0
            for point in all_points:
                key = keys[point.name]
                if campaign.cache.load(key) is not None:
                    continue  # published (or failed) — done for this run
                missing += 1
                lease = queue.claim(key, owner)
                if lease is None:
                    continue
                claimed_any = True
                try:
                    if campaign.cache.load(key) is not None:
                        continue  # published while we raced for the lease
                    with _LeaseKeeper(queue, lease):
                        envelope = _evaluate_guarded(point, key, salt,
                                                     timeout_s)
                    campaign.publish(point, key, envelope, store=store)
                    executed += 1
                    if on_point is not None:
                        on_point(point, key, envelope)
                finally:
                    queue.release(lease)
            if missing == 0:
                return executed
            if not claimed_any:
                # Everything left is leased elsewhere: recover orphans,
                # then wait for live owners to publish.
                if not (queue.reap_dead() or queue.reap_expired()):
                    time.sleep(poll_s)


def _spawned_worker(directory: str, lease_ttl_s: float,
                    timeout_s: Optional[float]) -> None:  # pragma: no cover
    """Child-process entry point (must be module-level for pickling)."""
    run_worker(directory, lease_ttl_s=lease_ttl_s, timeout_s=timeout_s)


# ----------------------------------------------------------------------
# Runner (drop-in for SweepRunner)


class CampaignRunner:
    """Drive a point list through a durable campaign directory.

    A drop-in replacement for :class:`~repro.core.sweep.SweepRunner` —
    same ``run(points) -> SweepResult`` interface — so ``explore()``,
    ``fig3_sweep``/``fig4_sweep``/``fig5_wearout_sweep`` and
    ``trace_sweep`` become campaign clients just by being handed this
    runner.  Differences from SweepRunner:

    * points are published through the leased work-queue, so any number
      of *additional* workers (other processes, other hosts) may drain
      the same directory concurrently;
    * every run is resumable: published points are never recomputed and
      are reported as ``cached`` (never ``simulated``) in the summary;
    * results are indexed in the campaign's SQLite store for
      ``repro campaign status|query|report``.
    """

    def __init__(self, directory: str, workers: Optional[int] = None,
                 salt: str = CODE_VERSION, name: str = "campaign",
                 progress: Optional[Callable[[PointOutcome, int, int],
                                             None]] = None,
                 timeout_s: Optional[float] = None,
                 lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
                 cost_model: Optional[ResourceCostModel] = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for all cores)")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        self.directory = str(directory)
        self.workers = workers if workers is not None \
            else (os.cpu_count() or 1)
        self.salt = salt
        self.name = name
        self.progress = progress
        self.timeout_s = timeout_s
        self.lease_ttl_s = lease_ttl_s
        self.cost_model = cost_model or ResourceCostModel()
        self.last_summary: Optional[SweepSummary] = None
        self.last_result: Optional[SweepResult] = None

    # ------------------------------------------------------------------
    def run(self, points: Sequence[SweepPoint]) -> SweepResult:
        points = list(points)
        started = time.perf_counter()
        campaign = Campaign.ensure(self.directory, points, salt=self.salt,
                                   name=self.name,
                                   cost_model=self.cost_model)
        campaign.clear_failure_envelopes()
        keys = [fingerprint(point, self.salt) for point in points]

        # Resume: anything already published is served, never recomputed.
        prepublished = {key for key in keys
                        if campaign.published_envelope(key) is not None}
        pending = [index for index, key in enumerate(keys)
                   if key not in prepublished]

        if pending:
            # Unlike SweepRunner, the width is NOT capped at cpu_count:
            # campaign workers are explicit user intent (and the crash /
            # resume tier needs real forked workers even on 1-CPU boxes).
            workers = min(self.workers, max(1, len(pending)))
            queue = LeaseQueue(campaign.queue_dir, ttl_s=self.lease_ttl_s)
            queue.reap_dead()
            if workers == 1:
                run_worker(self.directory, lease_ttl_s=self.lease_ttl_s,
                           timeout_s=self.timeout_s, points=points)
            else:
                self._run_processes(workers)
                # Belt and braces: if children died (or raced leases that
                # then expired), finish the remainder in-process.
                queue.reap_dead()
                run_worker(self.directory, lease_ttl_s=self.lease_ttl_s,
                           timeout_s=self.timeout_s, points=points)

        outcomes: List[PointOutcome] = []
        done = 0
        store_rows: List[Tuple[SweepPoint, str, Dict[str, Any]]] = []
        for point, key in zip(points, keys):
            envelope = campaign.cache.load(key)
            if envelope is None:  # unreachable unless the dir was wiped
                envelope = {"payload": {}, "events": 0, "elapsed_s": 0.0,
                            "failure": {"error_type": "CampaignError",
                                        "message": "point never published"}}
            cached = key in prepublished
            failure = None
            if envelope.get("failure") is not None:
                failure = PointFailure.from_dict(envelope["failure"])
            outcomes.append(PointOutcome(
                name=point.name, payload=envelope.get("payload", {}),
                cached=cached, events=int(envelope.get("events", 0)),
                elapsed_s=0.0 if cached
                else float(envelope.get("elapsed_s", 0.0)),
                key=key, failure=failure))
            store_rows.append((point, key, envelope))
            done += 1
            if self.progress is not None:
                self.progress(outcomes[-1], done, len(points))

        # Final idempotent sync so the store reflects this run even if a
        # worker crashed between publishing and recording.
        manifest = campaign.load_manifest()
        with campaign.store() as store:
            for point, key, envelope in store_rows:
                store.record_point(manifest["name"], point.name, envelope,
                                   key=key,
                                   cost=_point_cost(point, self.cost_model))

        cached_count = sum(1 for outcome in outcomes if outcome.cached)
        failed_count = sum(1 for outcome in outcomes if outcome.failed)
        fresh = [outcome for outcome in outcomes
                 if not outcome.cached and not outcome.failed]
        summary = SweepSummary(
            total=len(points), cached=cached_count, simulated=len(fresh),
            wall_seconds=time.perf_counter() - started,
            simulated_events=sum(outcome.events for outcome in fresh),
            workers=min(self.workers, max(1, len(pending)))
            if pending else 1,
            failed=failed_count)
        self.last_summary = summary
        result = SweepResult(outcomes=outcomes, summary=summary)
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    def _run_processes(self, workers: int) -> None:
        """Spawn ``workers`` child processes draining the campaign."""
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        children = []
        try:
            for _ in range(workers):
                child = context.Process(
                    target=_spawned_worker,
                    args=(self.directory, self.lease_ttl_s,
                          self.timeout_s))
                child.start()
                children.append(child)
        except (OSError, ValueError):  # cannot spawn: serial fallback
            pass
        for child in children:
            child.join()
