"""Design-space exploration: the FGDSE engine itself.

SSDExplorer's purpose is "finding the optimal SSD design point (i.e.,
minimum resource allocation) for a given target performance" where the
target is typically "set by the host interface bandwidth limits".
:class:`DesignSpaceExplorer` sweeps a set of candidate architectures,
measures each against the workload, and ranks the ones that meet the
target by a :class:`ResourceCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..host.workload import Workload
from ..ssd.architecture import SsdArchitecture
from ..ssd.scenarios import BreakdownRow
from . import pareto
from .sweep import SweepPoint, SweepRunner


@dataclass(frozen=True)
class ResourceCostModel:
    """Relative cost of SSD resources.

    The paper ranks C6 (16 buf / 16 chn / 8 way / 4 die) above C8
    (32 buf / 32 chn / 4 way / 2 die) despite C6 carrying twice the flash
    dies, so its implied costing weights controller-side resources — DDR
    devices + PHYs and channel controllers + pads — far above raw dies.
    Any weighting with ``buffer + channel >= 16 * die`` reproduces that
    ranking; the defaults sit comfortably inside that region.
    """

    buffer_weight: float = 24.0
    channel_weight: float = 24.0
    way_weight: float = 2.0
    die_weight: float = 1.0

    def __post_init__(self) -> None:
        for name in ("buffer_weight", "channel_weight", "way_weight",
                     "die_weight"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0 (negative weights "
                                 "invert the cost ordering)")

    def cost(self, arch: SsdArchitecture) -> float:
        """Total resource cost of an architecture."""
        return (self.buffer_weight * arch.n_ddr_buffers
                + self.channel_weight * arch.n_channels
                + self.way_weight * arch.n_channels * arch.n_ways
                + self.die_weight * arch.total_dies)


@dataclass
class DesignPoint:
    """One evaluated candidate."""

    name: str
    arch: SsdArchitecture
    row: BreakdownRow
    cost: float
    meets_target: bool
    measured_mbps: float = 0.0


def _cost(point: "DesignPoint") -> float:
    return point.cost


def _measured(point: "DesignPoint") -> float:
    return point.measured_mbps


def _name(point: "DesignPoint") -> str:
    return point.name


@dataclass
class ExplorationResult:
    """Outcome of a sweep."""

    target_mbps: float
    points: List[DesignPoint]

    @property
    def feasible(self) -> List[DesignPoint]:
        return [p for p in self.points if p.meets_target]

    @property
    def optimal(self) -> Optional[DesignPoint]:
        """Cheapest design point that meets the target.

        Ties on cost break by name so the answer is independent of the
        order the points were evaluated in (a parallel sweep invariant).
        """
        candidates = self.feasible
        if not candidates:
            return None
        return min(candidates, key=lambda p: (p.cost, p.name))

    def best_effort(self) -> DesignPoint:
        """Highest-throughput point (for when nothing meets the target)."""
        if not self.points:
            raise ValueError("no points evaluated")
        return pareto.best_item(self.points, _cost, _measured, _name)

    def cheapest_within(self, fraction: float = 0.95) -> DesignPoint:
        """Cheapest point whose throughput is within ``fraction`` of the
        best measured throughput — the tie-break used when the target is
        unreachable and all candidates flatten (paper: C1)."""
        if not self.points:
            raise ValueError("no points evaluated")
        return pareto.cheapest_within(self.points, _cost, _measured, _name,
                                      fraction)

    def pareto_frontier(self) -> List[DesignPoint]:
        """Non-dominated points in the (cost down, throughput up) plane.

        A point is dominated if another point is at least as cheap *and*
        at least as fast (strictly better in one dimension).  Returned
        sorted by ascending cost — the curve a designer trades along when
        no single target is fixed.  Shares its kernel (and the name
        tie-break convention) with the result store and the adaptive
        promoter via :mod:`repro.core.pareto`.
        """
        return pareto.pareto_frontier(self.points, _cost, _measured, _name)


def generate_design_space(channels: Sequence[int] = (2, 4, 8, 16),
                          ways: Sequence[int] = (1, 2, 4, 8),
                          dies: Sequence[int] = (1, 2, 4),
                          base: Optional[SsdArchitecture] = None,
                          max_total_dies: int = 2048
                          ) -> Dict[str, SsdArchitecture]:
    """Cartesian candidate generation for exhaustive sweeps.

    One DDR buffer per channel (the paper's upper bound), capped at
    ``max_total_dies`` to keep sweeps tractable.  Keys are Table II style
    labels.
    """
    for axis, values in (("channels", channels), ("ways", ways),
                         ("dies", dies)):
        if any(value < 1 for value in values):
            raise ValueError(f"{axis} values must be >= 1, got {values}")
    base = base or SsdArchitecture()
    candidates: Dict[str, SsdArchitecture] = {}
    for n_channels in channels:
        for n_ways in ways:
            for dies_per_way in dies:
                if n_channels * n_ways * dies_per_way > max_total_dies:
                    continue
                arch = base.scaled(n_channels=n_channels,
                                   n_ddr_buffers=n_channels,
                                   n_ways=n_ways,
                                   dies_per_way=dies_per_way)
                candidates[arch.label] = arch
    return candidates


class DesignSpaceExplorer:
    """Sweeps candidate architectures against a workload and a target."""

    def __init__(self, cost_model: Optional[ResourceCostModel] = None,
                 metric: str = "cache",
                 max_commands: Optional[int] = None):
        if metric not in ("cache", "no-cache"):
            raise ValueError("metric must be 'cache' or 'no-cache'")
        self.cost_model = cost_model or ResourceCostModel()
        self.metric = metric
        self.max_commands = max_commands

    def explore(self, candidates: Dict[str, SsdArchitecture],
                workload: Workload,
                target_mbps: Optional[float] = None,
                target_fraction: float = 0.97,
                runner: Optional[SweepRunner] = None) -> ExplorationResult:
        """Evaluate every candidate; default target = host-interface limit.

        ``target_fraction`` tolerates measurement granularity when testing
        whether a point saturates the interface.  ``runner`` fans the
        candidates out in parallel and/or through the result cache; the
        default evaluates serially in process.
        """
        items = list(candidates.items())
        if not items:
            return ExplorationResult(
                target_mbps=target_mbps if target_mbps is not None else 0.0,
                points=[])
        runner = runner or SweepRunner(workers=1)
        sweep_points = [
            SweepPoint(name=name, arch=arch, workload=workload,
                       evaluator="breakdown",
                       params={"max_commands": self.max_commands})
            for name, arch in items]
        outcomes = runner.run(sweep_points).outcomes
        points: List[DesignPoint] = []
        for (name, arch), outcome in zip(items, outcomes):
            row = BreakdownRow.from_dict(outcome.payload)
            measured = (row.ssd_cache_mbps if self.metric == "cache"
                        else row.ssd_no_cache_mbps)
            target = (target_mbps if target_mbps is not None
                      else row.host_ddr_mbps)
            points.append(DesignPoint(
                name=name, arch=arch, row=row,
                cost=self.cost_model.cost(arch),
                meets_target=measured >= target_fraction * target,
                measured_mbps=measured,
            ))
        resolved_target = (target_mbps if target_mbps is not None
                           else points[0].row.host_ddr_mbps)
        return ExplorationResult(target_mbps=resolved_target, points=points)
