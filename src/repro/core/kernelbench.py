"""Kernel speed benchmark (the Fig. 6 measurement, kernel-centric).

Two complementary measurements:

* :func:`kernel_microbench` — a pure event-kernel workload (timeout
  ping-pong across many coroutine processes, plus a same-timestamp burst)
  that isolates the hot path of :class:`~repro.kernel.Simulator` from any
  SSD modeling.  This is the number the ≥2× speed target of the hot-path
  overhaul is tracked against.
* :func:`interface_speed` — a full-platform run (host interface + channels
  + dies) for a SATA and a PCIe configuration, reporting events/sec and the
  simulated-time / wall-time ratio the paper's Fig. 6 frames simulation
  speed with (a ratio > 1 means the platform simulates faster than the
  hardware it models would run).

:func:`kernel_speed_report` bundles both into one plain dict, and
:func:`write_report` persists it as JSON so successive PRs accumulate a
perf trajectory.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Dict, Optional

from ..host.interface import pcie_nvme_spec, sata2_spec
from ..host.workload import sequential_write
from ..kernel import Simulator
from ..kernel.simtime import period_from_hz
from ..ssd.architecture import SsdArchitecture
from ..ssd.device import SsdDevice
from ..ssd.metrics import run_workload
from .speed import PLATFORM_CLOCK_HZ


def _pingpong(n_procs: int, n_steps: int) -> Dict[str, float]:
    """Timeout ping-pong: many processes sleeping staggered delays."""
    sim = Simulator()

    def worker(delay):
        for __ in range(n_steps):
            yield delay

    for index in range(n_procs):
        sim.process(worker(10 + (index % 7)))
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    return {"events": sim.events_processed, "wall_seconds": wall,
            "events_per_sec": sim.events_processed / wall if wall else 0.0}


def _same_time_burst(n_procs: int, rounds: int) -> Dict[str, float]:
    """All processes wake at the same timestamps: exercises batch drain."""
    sim = Simulator()

    def worker():
        for __ in range(rounds):
            yield 100

    for __ in range(n_procs):
        sim.process(worker())
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    return {"events": sim.events_processed, "wall_seconds": wall,
            "events_per_sec": sim.events_processed / wall if wall else 0.0}


def kernel_microbench(n_procs: int = 100, n_steps: int = 2000,
                      repeats: int = 3) -> Dict[str, Any]:
    """Best-of-``repeats`` pure-kernel throughput (events/sec)."""
    pingpong = max((_pingpong(n_procs, n_steps) for __ in range(repeats)),
                   key=lambda sample: sample["events_per_sec"])
    burst = max((_same_time_burst(n_procs * 2, n_steps // 4)
                 for __ in range(repeats)),
                key=lambda sample: sample["events_per_sec"])
    return {"pingpong": pingpong, "same_time_burst": burst,
            "events_per_sec": pingpong["events_per_sec"]}


def interface_speed(kind: str, n_commands: int = 400) -> Dict[str, Any]:
    """Fig. 6 style full-platform measurement for one host interface.

    ``kind`` is ``"sata"`` (SATA II) or ``"pcie"`` (PCIe Gen2 x8 + NVMe).
    """
    if kind == "sata":
        host = sata2_spec()
    elif kind == "pcie":
        host = pcie_nvme_spec(generation=2, lanes=8)
    else:
        raise ValueError(f"kind must be 'sata' or 'pcie', got {kind!r}")
    arch = SsdArchitecture(host=host)
    sim = Simulator()
    device = SsdDevice(sim, arch)
    workload = sequential_write(4096 * n_commands)
    started = time.perf_counter()
    run_workload(sim, device, workload)
    wall = time.perf_counter() - started
    sim_seconds = sim.now / 1e12
    cycles = sim.now / period_from_hz(PLATFORM_CLOCK_HZ)
    return {
        "host": kind,
        "n_commands": n_commands,
        "events": sim.events_processed,
        "wall_seconds": wall,
        "sim_seconds": sim_seconds,
        "events_per_sec": sim.events_processed / wall if wall else 0.0,
        "sim_time_over_wall_time": sim_seconds / wall if wall else 0.0,
        "kcps": cycles / 1e3 / wall if wall else 0.0,
    }


def kernel_speed_report(n_commands: int = 400,
                        micro_procs: int = 100,
                        micro_steps: int = 2000) -> Dict[str, Any]:
    """The full benchmark: microbench + SATA + PCIe, as one plain dict."""
    return {
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "kernel_microbench": kernel_microbench(micro_procs, micro_steps),
        "interfaces": {
            "sata": interface_speed("sata", n_commands),
            "pcie": interface_speed("pcie", n_commands),
        },
    }


def write_report(path: str, report: Optional[Dict[str, Any]] = None,
                 **kwargs: Any) -> Dict[str, Any]:
    """Run (if needed) and persist the benchmark report as JSON."""
    if report is None:
        report = kernel_speed_report(**kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a :func:`kernel_speed_report` dict."""
    micro = report["kernel_microbench"]
    lines = [
        "kernel microbench:",
        f"  pingpong        {micro['pingpong']['events_per_sec']:>12,.0f} events/s",
        f"  same-time burst {micro['same_time_burst']['events_per_sec']:>12,.0f} events/s",
        "interfaces:",
    ]
    for name, sample in report["interfaces"].items():
        lines.append(
            f"  {name:<5} {sample['events_per_sec']:>12,.0f} events/s   "
            f"sim/wall {sample['sim_time_over_wall_time']:>8.3f}   "
            f"{sample['kcps']:>10,.0f} KCPS")
    return "\n".join(lines)
