"""The fine-grained design-space exploration (FGDSE) layer.

The explorer sweeps architectures against workloads and ranks feasible
design points by resource cost; the experiments module pins down every
table and figure of the paper; validation, speed and features reproduce
Fig. 2, Fig. 6 and Table I respectively.
"""

from .adaptive import (AdaptiveOutcome, adaptive_breakdown_exploration,
                       adaptive_fig3, calibrated_fast_fidelity,
                       grid_coordinates, promote, propose_neighbors)
from .calibrate import (DEFAULT_ERROR_BOUND, CalibrationResult, calibrate,
                        calibration_key, fast_architecture,
                        fidelity_error_report)
from .campaign import (Campaign, CampaignError, CampaignRunner,
                       CampaignStatus, Lease, LeaseQueue, run_worker)
from .experiments import (FAULT_CAMPAIGN_FRACTIONS, TABLE2_LABELS,
                          TABLE3_LABELS, breakdown_points,
                          faults_architecture,
                          faults_campaign, fig3_profile, fig3_sweep,
                          fig3_workload, fig4_sweep, fig5_architecture,
                          fig5_profile, fig5_wearout_sweep, profile_point,
                          table2_configs,
                          table3_configs, validation_config)
from .explorer import (DesignPoint, DesignSpaceExplorer, ExplorationResult,
                       ResourceCostModel, generate_design_space)
from .ftlsweep import (analytic_waf_check, default_dram_budgets,
                       evaluate_ftl_point, ftl_sweep, ftl_sweep_points,
                       ftl_sweep_table)
from .tenantsweep import (DEFAULT_TENANT_COUNTS, default_tenant_set,
                          evaluate_tenants_point, interference_matrix,
                          run_tenant_mix, tenant_sweep,
                          tenant_sweep_points, tenant_sweep_table,
                          tenants_base_architecture)
from .fullreport import generate_report
from .kernelbench import (interface_speed, kernel_microbench,
                          kernel_speed_report, render_report, write_report)
from .features import (CAPABILITY_CHECKS, FEATURE_MATRIX, PLATFORMS,
                       SIMULATION_SPEED, render_table,
                       verify_ssdexplorer_column)
from .pareto import (ParetoEntry, entry_best, entry_cheapest_within,
                     entry_frontier, frontier_value_at, multi_frontier,
                     pareto_frontier)
from .reliability import (REL_PREFIX, Z_95, ReliabilityCell,
                          ReliabilityEstimate, ReliabilityGrid,
                          ReliabilityOutcome, aggregate_estimates,
                          reliability_frontier, replica_point,
                          replica_points, replica_seed,
                          report_from_campaign, run_reliability_campaign,
                          wilson_interval)
from .report import (render_breakdown_table, render_json,
                     render_series_table, render_speed_table,
                     render_validation_table)
from .sensitivity import (SensitivityCurve, SensitivityPoint,
                          bottleneck_report, render_sensitivity_table,
                          sweep_parameter)
from .store import (ResultStore, flatten_metrics, parse_constraint)
from .sweep import (CODE_VERSION, PointFailure, PointOutcome, PointTimeout,
                    SweepCache, SweepPoint, SweepResult, SweepRunner,
                    SweepSummary, fingerprint, print_progress)
from .tracereplay import (ReplayOutcome, TraceWorkload, replay_trace,
                          sha256_file, trace_sweep, trace_sweep_points)
from .speed import (PLATFORM_CLOCK_HZ, SpeedSample, measure_speed,
                    speed_sweep)
from .validation import (PAPER_ERROR_MARGINS, REFERENCE_MBPS,
                         ValidationPoint, run_validation)

__all__ = [
    "AdaptiveOutcome", "Campaign", "CampaignError", "CampaignRunner",
    "CampaignStatus", "Lease", "LeaseQueue", "ParetoEntry", "ResultStore",
    "adaptive_breakdown_exploration", "adaptive_fig3", "breakdown_points",
    "calibrated_fast_fidelity", "entry_best", "entry_cheapest_within",
    "entry_frontier", "flatten_metrics", "frontier_value_at",
    "grid_coordinates", "multi_frontier", "pareto_frontier",
    "parse_constraint", "promote", "propose_neighbors", "run_worker",
    "REL_PREFIX", "Z_95", "ReliabilityCell", "ReliabilityEstimate",
    "ReliabilityGrid", "ReliabilityOutcome", "aggregate_estimates",
    "reliability_frontier", "replica_point", "replica_points",
    "replica_seed", "report_from_campaign", "run_reliability_campaign",
    "wilson_interval",
    "CAPABILITY_CHECKS", "CODE_VERSION", "CalibrationResult",
    "DEFAULT_ERROR_BOUND", "calibrate", "calibration_key",
    "fast_architecture", "fidelity_error_report", "DesignPoint",
    "DesignSpaceExplorer", "PointFailure", "PointOutcome", "PointTimeout",
    "SweepCache", "SweepPoint",
    "SweepResult", "SweepRunner", "SweepSummary", "fingerprint",
    "print_progress",
    "ExplorationResult", "FEATURE_MATRIX", "PAPER_ERROR_MARGINS",
    "PLATFORMS", "PLATFORM_CLOCK_HZ", "REFERENCE_MBPS",
    "ResourceCostModel", "SIMULATION_SPEED", "SensitivityCurve",
    "SensitivityPoint", "SpeedSample", "bottleneck_report",
    "render_sensitivity_table", "sweep_parameter",
    "FAULT_CAMPAIGN_FRACTIONS", "TABLE2_LABELS", "TABLE3_LABELS",
    "ValidationPoint", "faults_architecture", "faults_campaign",
    "fig3_profile", "fig3_sweep",
    "fig3_workload", "fig4_sweep", "fig5_architecture", "fig5_profile",
    "fig5_wearout_sweep", "generate_design_space", "generate_report",
    "profile_point",
    "interface_speed", "kernel_microbench", "kernel_speed_report",
    "measure_speed", "render_report", "write_report",
    "ReplayOutcome", "TraceWorkload", "replay_trace", "sha256_file",
    "trace_sweep", "trace_sweep_points",
    "analytic_waf_check", "default_dram_budgets", "evaluate_ftl_point",
    "ftl_sweep", "ftl_sweep_points", "ftl_sweep_table",
    "DEFAULT_TENANT_COUNTS", "default_tenant_set",
    "evaluate_tenants_point", "interference_matrix", "run_tenant_mix",
    "tenant_sweep", "tenant_sweep_points", "tenant_sweep_table",
    "tenants_base_architecture",
    "render_breakdown_table", "render_json",
    "render_series_table", "render_speed_table", "render_table",
    "render_validation_table", "run_validation", "speed_sweep",
    "table2_configs", "table3_configs", "validation_config",
    "verify_ssdexplorer_column",
]
