"""Golden-figure definitions: the regression net under the paper figures.

Each golden is a *small but shape-complete* instance of a paper figure
(or of the sample-trace replay) whose summary metrics are checked into
``tests/golden/`` as JSON and asserted **exactly equal** on every run —
the whole stack is deterministic, so any drift, however small, is a
behavior change that must be either fixed or consciously re-baselined
with ``make golden-refresh``.

The computations live here (not in the test file) so the pytest tier and
``tools/refresh_goldens.py`` can never disagree about what a golden
means.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict

#: Repo-relative directory holding the checked-in goldens.
GOLDEN_DIR = os.path.join("tests", "golden")

#: Bundled sample trace (repo-relative).
SAMPLE_TRACE = os.path.join("examples", "sample_msr.csv")


def golden_fig3() -> Dict[str, Any]:
    """Fig. 3 summary metrics: two Table II configs, five bars each.

    C1 and C6 bracket the design space (smallest vs 16-channel) and pin
    both the absolute bar heights and the scaling ratio between them.
    """
    from .experiments import fig3_sweep
    from .sweep import SweepRunner
    rows = fig3_sweep(n_commands=120, configs=["C1", "C6"],
                      runner=SweepRunner(workers=1))
    return {name: row.as_dict() for name, row in rows.items()}


def golden_fig5() -> Dict[str, Any]:
    """Fig. 5 endpoints: fixed vs adaptive BCH at fresh and worn-out."""
    from .experiments import fig5_wearout_sweep
    from .sweep import SweepRunner
    series = fig5_wearout_sweep(fractions=[0.0, 1.0], n_commands=80,
                                runner=SweepRunner(workers=1))
    return {key: [[fraction, mbps] for fraction, mbps in points]
            for key, points in series.items()}


def golden_sample_trace(repo_root: str = ".") -> Dict[str, Any]:
    """The bundled sample trace: characterization + replay RunResult."""
    from .tracereplay import TraceWorkload, replay_trace
    path = os.path.join(repo_root, SAMPLE_TRACE)
    outcome = replay_trace(TraceWorkload.from_file(path),
                           label="golden/sample-trace")
    result = outcome.result.to_dict()
    result["wall_seconds"] = 0.0  # machine load, not simulation output
    return {"profile": outcome.profile.to_dict(), "result": result}


def golden_ftl_sample_trace(repo_root: str = ".") -> Dict[str, Any]:
    """The sample trace through the real-FTL device: page-map reference
    plus DFTL at a pinned mid-size DRAM budget.

    Pins the whole FTL stack — preconditioning, GC, victim selection,
    translation paging, replay timing and the counter/footprint payload.
    Any behavior drift in a scheme shows up as a byte diff here.
    """
    from .ftlsweep import ftl_sweep
    from .sweep import SweepRunner
    from .tracereplay import TraceWorkload
    path = os.path.join(repo_root, SAMPLE_TRACE)
    payloads = ftl_sweep(TraceWorkload.from_file(path),
                         schemes=["pagemap", "dftl"],
                         dram_budgets=[8192],
                         runner=SweepRunner(workers=1))
    return payloads


def golden_tenants_small() -> Dict[str, Any]:
    """A 3-tenant mix under both arbitration policies (synthetic only).

    Pins the whole multi-initiator stack — queue-pair arbitration, the
    static stream merge, namespace partitioning, log-binned tail
    percentiles, share accounting and the pairwise interference matrix.
    Any behavior drift in arbitration or placement shows up as a byte
    diff here.
    """
    from .sweep import SweepRunner
    from .tenantsweep import tenant_sweep
    return tenant_sweep(counts=[3], policies=["rr", "wrr"],
                        runner=SweepRunner(workers=1))


GOLDENS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "fig3": golden_fig3,
    "fig5": golden_fig5,
    "sample_trace": golden_sample_trace,
    "ftl_sample_trace": golden_ftl_sample_trace,
    "tenants_small": golden_tenants_small,
}


def compute_golden(name: str, repo_root: str = ".") -> Dict[str, Any]:
    """Compute one golden document (repo-root-relative inputs)."""
    builder = GOLDENS[name]
    if name in ("sample_trace", "ftl_sample_trace"):
        return builder(repo_root)
    return builder()


def golden_path(name: str, repo_root: str = ".") -> str:
    return os.path.join(repo_root, GOLDEN_DIR, f"{name}.json")


def serialize_golden(document: Dict[str, Any]) -> str:
    """The canonical on-disk form — stable across refreshes."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def load_golden(name: str, repo_root: str = ".") -> Dict[str, Any]:
    with open(golden_path(name, repo_root), "r", encoding="utf-8") as fh:
        return json.load(fh)


def refresh_goldens(repo_root: str = ".") -> Dict[str, str]:
    """(Re)write every golden; returns {name: path}.

    Writing is idempotent: refreshing on an unchanged tree produces
    byte-identical files (asserted by the golden tier itself).
    """
    written: Dict[str, str] = {}
    os.makedirs(os.path.join(repo_root, GOLDEN_DIR), exist_ok=True)
    for name in sorted(GOLDENS):
        path = golden_path(name, repo_root)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(serialize_golden(compute_golden(name, repo_root)))
        written[name] = path
    return written
