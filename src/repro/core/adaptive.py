"""Adaptive design-space exploration: successive halving over fidelity.

PR 6's fidelity dial made a calibrated ``fast`` point 16–20× cheaper
than a ``cycle`` one; this module spends that ratio deliberately.  The
full candidate grid is *screened* at fast fidelity, the empirical Pareto
band is *promoted* to cycle fidelity, and a Pareto-guided proposer
spends any leftover cycle budget on unevaluated grid neighbors of the
frontier — so a Table-II-scale space resolves its cycle-accurate
frontier while simulating only a fraction of the points at cycle
fidelity (the fig3 acceptance bar is ≤ 50%, recorded in
EXPERIMENTS.md).

Everything here is deterministic and permutation-invariant (name
tie-breaks throughout, via :mod:`repro.core.pareto`), so adaptive
campaigns resume and parallelize exactly like exhaustive ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple)

from ..host.workload import Workload
from ..ssd.architecture import SsdArchitecture
from ..ssd.scenarios import BreakdownRow
from .explorer import ResourceCostModel
from .pareto import ParetoEntry, entry_frontier, frontier_value_at
from .sweep import SweepPoint, SweepRunner

#: Relative value shortfall below which a defect is considered zero
#: (guards the division when the frontier value at a cost is ~0).
_EPS = 1e-9

#: Name prefix for fast-fidelity screening points inside a campaign, so
#: the screen and the promoted cycle points coexist in one directory.
FAST_PREFIX = "fast/"


def promote(entries: Sequence[ParetoEntry],
            budget_fraction: float = 0.5) -> List[ParetoEntry]:
    """Successive-halving promotion: the fast-tier Pareto band.

    Ranks every screened entry by *frontier defect* — how far (relative)
    its value falls below the best frontier value available at its cost
    — and promotes the ``budget_fraction`` best, never fewer than the
    frontier itself.  Guarantees, locked by
    ``tests/core/test_adaptive.py``:

    * the full fast-tier Pareto frontier is always promoted (defect 0,
      frontier-first tie-break, quota floored at the frontier size);
    * ``len(promoted) <= max(len(frontier), ceil(budget_fraction * n))``;
    * the result is invariant under permutation of ``entries`` (ranking
      ties break by name).
    """
    if not 0.0 < budget_fraction <= 1.0:
        raise ValueError(f"budget_fraction must be in (0, 1], got "
                         f"{budget_fraction}")
    pool = sorted(entries, key=lambda e: e.name)
    if not pool:
        return []
    frontier = entry_frontier(pool)
    frontier_names = {e.name for e in frontier}
    ranked: List[Tuple[float, bool, str, ParetoEntry]] = []
    for entry in pool:
        if entry.name in frontier_names:
            ranked.append((0.0, False, entry.name, entry))
            continue
        reference = frontier_value_at(frontier, entry.cost)
        if reference is None:  # cheaper than the whole frontier: keep it
            defect = 0.0
        else:
            defect = max(0.0, (reference - entry.value)
                         / max(abs(reference), _EPS))
        ranked.append((defect, True, entry.name, entry))
    ranked.sort(key=lambda item: item[:3])
    quota = max(len(frontier),
                math.ceil(budget_fraction * len(pool)))
    return [entry for _, _, _, entry in ranked[:quota]]


def grid_coordinates(candidates: Mapping[str, SsdArchitecture]
                     ) -> Dict[str, Tuple[float, ...]]:
    """The (channels, ways, dies/way) grid coordinate of each candidate."""
    return {name: (float(arch.n_channels), float(arch.n_ways),
                   float(arch.dies_per_way))
            for name, arch in candidates.items()}


def propose_neighbors(coordinates: Mapping[str, Sequence[float]],
                      frontier_names: Iterable[str],
                      evaluated: Iterable[str] = (),
                      limit: Optional[int] = None) -> List[str]:
    """Pareto-guided proposals: unevaluated grid neighbors of the frontier.

    A neighbor differs from a frontier point in exactly one axis, moved
    to the adjacent unique value of that axis across the whole grid.
    Proposals come out in deterministic order — frontier names sorted,
    axes in order, lower neighbor before upper — with duplicates and
    already-evaluated names removed, so the proposer is itself
    permutation-invariant.
    """
    axis_values: List[List[float]] = []
    if coordinates:
        n_axes = len(next(iter(coordinates.values())))
        for axis in range(n_axes):
            axis_values.append(sorted({tuple(coord)[axis]
                                       for coord in coordinates.values()}))
    by_coord: Dict[Tuple[float, ...], List[str]] = {}
    for name, coord in coordinates.items():
        by_coord.setdefault(tuple(coord), []).append(name)
    for names in by_coord.values():
        names.sort()
    skip = set(evaluated)
    proposals: List[str] = []
    seen: set = set()
    for name in sorted(frontier_names):
        if name not in coordinates:
            continue
        coord = tuple(coordinates[name])
        for axis in range(len(coord)):
            values = axis_values[axis]
            index = values.index(coord[axis])
            for step in (-1, 1):
                if not 0 <= index + step < len(values):
                    continue
                neighbor = list(coord)
                neighbor[axis] = values[index + step]
                for candidate in by_coord.get(tuple(neighbor), []):
                    if candidate in skip or candidate in seen:
                        continue
                    seen.add(candidate)
                    proposals.append(candidate)
                    if limit is not None and len(proposals) >= limit:
                        return proposals
    return proposals


def calibrated_fast_fidelity(base: Optional[SsdArchitecture] = None):
    """The calibrated all-fast fidelity config (PR 6's screening tier)."""
    from dataclasses import replace

    from ..ssd.fidelity import fidelity_from_spec
    from .calibrate import calibrate
    config = fidelity_from_spec("fast")
    return replace(config, **calibrate(base or SsdArchitecture()).to_dict())


@dataclass
class AdaptiveOutcome:
    """What an adaptive exploration did and what it concluded."""

    metric: str
    budget_fraction: float
    screened: List[str]                  #: names screened at fast tier
    promoted: List[str]                  #: names simulated at cycle tier
    proposed: List[str]                  #: proposer picks inside the budget
    fast_entries: List[ParetoEntry]      #: fast-tier (name, cost, value)
    cycle_entries: List[ParetoEntry]     #: cycle-tier (name, cost, value)
    rows: Dict[str, BreakdownRow] = field(default_factory=dict)

    @property
    def fast_frontier(self) -> List[ParetoEntry]:
        return entry_frontier(self.fast_entries)

    @property
    def cycle_frontier(self) -> List[ParetoEntry]:
        """The answer: the cycle-fidelity Pareto frontier."""
        return entry_frontier(self.cycle_entries)

    @property
    def cycle_point_fraction(self) -> float:
        """Fraction of the grid simulated at cycle fidelity."""
        if not self.screened:
            return 0.0
        return len(self.promoted) / len(self.screened)

    def format(self) -> str:
        frontier = ", ".join(f"{e.name} (cost {e.cost:.0f}, "
                             f"{e.value:.1f} MB/s)"
                             for e in self.cycle_frontier)
        return (f"adaptive: screened {len(self.screened)} at fast, "
                f"promoted {len(self.promoted)} to cycle "
                f"({100 * self.cycle_point_fraction:.0f}% of grid)\n"
                f"cycle frontier: {frontier}")


def adaptive_breakdown_exploration(
        candidates: Mapping[str, SsdArchitecture], workload: Workload,
        budget_fraction: float = 0.5, metric: str = "ssd_cache_mbps",
        runner: Optional[SweepRunner] = None,
        cost_model: Optional[ResourceCostModel] = None,
        fast_fidelity=None) -> AdaptiveOutcome:
    """Resolve a candidate grid's cycle frontier adaptively.

    Screens every candidate at calibrated fast fidelity, promotes the
    Pareto band (:func:`promote`) to cycle fidelity, and spends any
    cycle-budget slots the promoter left unused on proposer picks
    (:func:`propose_neighbors`).  ``runner`` may be a plain
    :class:`~repro.core.sweep.SweepRunner` or a
    :class:`~repro.core.campaign.CampaignRunner` — with the latter, the
    screen and the promotion land in one resumable campaign directory
    (fast points under ``fast/``).
    """
    if not candidates:
        raise ValueError("no candidates to explore")
    cost_model = cost_model or ResourceCostModel()
    runner = runner or SweepRunner(workers=1)
    if fast_fidelity is None:
        fast_fidelity = calibrated_fast_fidelity(
            next(iter(candidates.values())))
    names = sorted(candidates)
    costs = {name: cost_model.cost(candidates[name]) for name in names}

    # Rung 1: screen the whole grid at fast fidelity.
    fast_points = [SweepPoint(name=f"{FAST_PREFIX}{name}",
                              arch=candidates[name].with_fidelity(
                                  fast_fidelity),
                              workload=workload)
                   for name in names]
    fast_result = runner.run(fast_points)
    fast_entries: List[ParetoEntry] = []
    for name, outcome in zip(names, fast_result.outcomes):
        if outcome.failed:
            continue
        row = BreakdownRow.from_dict(outcome.payload)
        fast_entries.append(ParetoEntry(name=name, cost=costs[name],
                                        value=getattr(row, metric)))

    # Promote the Pareto band; the proposer fills any budget slack with
    # unevaluated grid neighbors of the fast frontier.
    promoted = [entry.name for entry in promote(fast_entries,
                                                budget_fraction)]
    quota = max(len(entry_frontier(fast_entries)),
                math.ceil(budget_fraction * len(fast_entries)))
    proposed: List[str] = []
    slack = quota - len(promoted)
    if slack > 0:
        proposed = propose_neighbors(
            grid_coordinates(dict(candidates)),
            [entry.name for entry in entry_frontier(fast_entries)],
            evaluated=promoted, limit=slack)
        promoted = promoted + proposed

    # Rung 2: the promoted band at full cycle fidelity.
    cycle_points = [SweepPoint(name=name, arch=candidates[name],
                               workload=workload)
                    for name in promoted]
    cycle_result = runner.run(cycle_points)
    cycle_entries: List[ParetoEntry] = []
    rows: Dict[str, BreakdownRow] = {}
    for name, outcome in zip(promoted, cycle_result.outcomes):
        if outcome.failed:
            continue
        row = BreakdownRow.from_dict(outcome.payload)
        rows[name] = row
        cycle_entries.append(ParetoEntry(name=name, cost=costs[name],
                                         value=getattr(row, metric)))

    return AdaptiveOutcome(
        metric=metric, budget_fraction=budget_fraction, screened=names,
        promoted=promoted, proposed=proposed,
        fast_entries=fast_entries, cycle_entries=cycle_entries, rows=rows)


def adaptive_fig3(n_commands: int = 2000,
                  configs: Optional[List[str]] = None,
                  budget_fraction: float = 0.5,
                  runner: Optional[SweepRunner] = None,
                  metric: str = "ssd_cache_mbps") -> AdaptiveOutcome:
    """Adaptive exploration of the fig3 (Table II, SATA II) grid."""
    from ..host.interface import sata2_spec
    from .experiments import TABLE2_LABELS, fig3_workload, table2_configs
    base = SsdArchitecture(host=sata2_spec())
    selected = configs or list(TABLE2_LABELS)
    candidates = {name: arch for name, arch
                  in table2_configs(base).items() if name in selected}
    return adaptive_breakdown_exploration(
        candidates, fig3_workload(n_commands),
        budget_fraction=budget_fraction, metric=metric, runner=runner)
