"""Table I: feature comparison of SSD exploration frameworks.

The paper positions SSDExplorer against emulation platforms (VSSIM-like),
trace-driven simulators (DiskSim/FlashSim-like) and hardware platforms
(OpenSSD/BlueSSD-like).  This module encodes that matrix and — for the
SSDExplorer column — cross-checks each claimed feature against the
capability actually implemented in this reproduction, so the table stays
honest as the code evolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

PLATFORMS = ["SSDExplorer", "Emulation", "Trace-driven", "Hardware"]

#: Rows of Table I: feature -> support per platform column.
FEATURE_MATRIX: Dict[str, Dict[str, bool]] = {
    "Actual FTL (WL, GC, TRIM)": {
        "SSDExplorer": True, "Emulation": True,
        "Trace-driven": True, "Hardware": True},
    "WAF FTL": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": False},
    "Host IF performance": {
        "SSDExplorer": True, "Emulation": True,
        "Trace-driven": False, "Hardware": True},
    "Real workload": {
        "SSDExplorer": False, "Emulation": True,
        "Trace-driven": False, "Hardware": True},
    "Different Host IF": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": True, "Hardware": False},
    "DDR timings": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": False},
    "Multi DDR buffer": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": False},
    "Way: Shared bus": {
        "SSDExplorer": True, "Emulation": True,
        "Trace-driven": True, "Hardware": True},
    "Way: Shared control": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": True, "Hardware": False},
    "NAND architecture": {
        "SSDExplorer": True, "Emulation": True,
        "Trace-driven": True, "Hardware": False},
    "NAND timings": {
        "SSDExplorer": True, "Emulation": True,
        "Trace-driven": True, "Hardware": True},
    "NAND latency aware": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": True},
    "ECC timings": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": True},
    "Compression": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": False},
    "Interconnect model": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": True},
    "Core model": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": True},
    "Real firmware exec": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": True},
    "Multi Core": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": False},
    "Model refinement": {
        "SSDExplorer": True, "Emulation": False,
        "Trace-driven": False, "Hardware": False},
}

#: Simulation speed row (qualitative, as in the paper).
SIMULATION_SPEED = {
    "SSDExplorer": "Variable", "Emulation": "High",
    "Trace-driven": "High", "Hardware": "Fixed",
}


def _check_waf_ftl() -> bool:
    from ..ftl import WafModel
    return WafModel().waf_for("random") > 1.0


def _check_actual_ftl() -> bool:
    from ..ftl import FlashBackend, PageMapFtl
    ftl = PageMapFtl(FlashBackend(1, 1, 8, 8), logical_pages=32)
    ftl.write(0)
    ftl.trim(0)
    return ftl.trims == 1


def _check_host_interfaces() -> bool:
    from ..host import pcie_nvme_spec, sata2_spec
    return (sata2_spec().queue_depth == 32
            and pcie_nvme_spec().queue_depth == 65536)


def _check_ddr() -> bool:
    from ..dram import Ddr2Timing
    return Ddr2Timing().peak_bandwidth_mbps() > 0


def _check_multi_buffer() -> bool:
    from ..ssd import SsdArchitecture
    return SsdArchitecture(n_ddr_buffers=8, n_channels=8).n_ddr_buffers == 8


def _check_gangs() -> bool:
    from ..controller import GangScheme
    return {GangScheme.SHARED_BUS, GangScheme.SHARED_CONTROL} \
        == set(GangScheme)


def _check_nand_latency_aware() -> bool:
    from ..nand import MlcTimingModel
    timing = MlcTimingModel()
    return timing.program_time(0, 0) != timing.program_time(1, 0)


def _check_ecc_timings() -> bool:
    from ..ecc import BchLatencyModel
    model = BchLatencyModel()
    return model.decode_cycles(8192, 40) > model.decode_cycles(8192, 4)


def _check_compression() -> bool:
    from ..compression import compress, decompress
    payload = b"abc" * 100
    return decompress(compress(payload)) == payload


def _check_interconnect() -> bool:
    from ..interconnect import AhbBus
    from ..kernel import Simulator
    return AhbBus(Simulator()).clock.frequency_hz == 200e6


def _check_core_model() -> bool:
    from ..cpu import assemble
    return len(assemble("nop\nhalt\n")) == 2


def _check_firmware_exec() -> bool:
    from ..cpu.firmware import DISPATCH_FIRMWARE, assemble as __
    from ..cpu import assemble
    return len(assemble(DISPATCH_FIRMWARE)) > 10


def _check_multicore() -> bool:
    from ..cpu import AbstractCpu
    from ..kernel import Simulator
    return AbstractCpu(Simulator(), n_cores=4).n_cores == 4


def _check_refinement() -> bool:
    from ..ssd import CpuMode
    return {CpuMode.ABSTRACT, CpuMode.FIRMWARE} == set(CpuMode)


#: Feature name -> executable capability check for this reproduction.
CAPABILITY_CHECKS: Dict[str, Callable[[], bool]] = {
    "Actual FTL (WL, GC, TRIM)": _check_actual_ftl,
    "WAF FTL": _check_waf_ftl,
    "Host IF performance": _check_host_interfaces,
    "Different Host IF": _check_host_interfaces,
    "DDR timings": _check_ddr,
    "Multi DDR buffer": _check_multi_buffer,
    "Way: Shared bus": _check_gangs,
    "Way: Shared control": _check_gangs,
    "NAND architecture": _check_nand_latency_aware,
    "NAND timings": _check_nand_latency_aware,
    "NAND latency aware": _check_nand_latency_aware,
    "ECC timings": _check_ecc_timings,
    "Compression": _check_compression,
    "Interconnect model": _check_interconnect,
    "Core model": _check_core_model,
    "Real firmware exec": _check_firmware_exec,
    "Multi Core": _check_multicore,
    "Model refinement": _check_refinement,
}


def verify_ssdexplorer_column() -> Dict[str, bool]:
    """Execute every capability check; returns feature -> implemented."""
    return {feature: check() for feature, check in CAPABILITY_CHECKS.items()}


def render_table() -> str:
    """Render Table I as fixed-width text."""
    width = max(len(feature) for feature in FEATURE_MATRIX) + 2
    header = "Feature".ljust(width) + "".join(
        platform.ljust(14) for platform in PLATFORMS)
    lines = [header, "-" * len(header)]
    for feature, support in FEATURE_MATRIX.items():
        cells = "".join(("yes" if support[p] else "no").ljust(14)
                        for p in PLATFORMS)
        lines.append(feature.ljust(width) + cells)
    lines.append("Simulation speed".ljust(width) + "".join(
        SIMULATION_SPEED[p].ljust(14) for p in PLATFORMS))
    return "\n".join(lines)
