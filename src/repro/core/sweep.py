"""Parallel design-space sweep engine with a content-addressed result cache.

The paper's workflow is *fine-grained design space exploration*: many
independent (architecture, workload) points evaluated against the same
metrics.  Those evaluations share nothing at runtime, so
:class:`SweepRunner` fans them out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (default width
``os.cpu_count()``, serial in-process fallback for ``workers=1`` or when
no pool can be created) and memoizes each point in an on-disk cache keyed
by a stable content hash of the architecture + workload + evaluator
parameters + a code-version salt.  Re-running a sweep therefore only
simulates new or changed points, and because every finished point is
flushed to the cache as it arrives, a killed sweep resumes where it left
off.

Determinism contract: a point's *payload* (the cacheable result) depends
only on its fingerprint inputs — parallel and serial runs produce
identical payloads, which the determinism test tier locks down.  Wall
time and scheduling order are metadata, never part of a payload.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import multiprocessing
import os
import random
import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..ssd.device import DataPathMode
from ..ssd.scenarios import breakdown_with_events, measure

#: Salt folded into every fingerprint.  Bump whenever a change alters the
#: simulated numbers (timing models, scheduler fixes, metric definitions)
#: so stale cache entries from older code are treated as misses.
#: sweep-2: architectures gained the fault-injection config field.
#: sweep-3: RunResult payloads gained stage_breakdown and are sanitized
#: with json_safe (non-finite floats become null).
#: sweep-4: architectures gained the fidelity config field (cycle/fast
#: abstraction levels participate in every fingerprint).
#: sweep-5: RunResult reliability payloads gained page_reads,
#: background_write_faults and the per-command outcome histogram.
#: sweep-6: architectures gained the FTL scheme registry fields
#: (ftl_scheme / ftl_dram_bytes / ftl_group_pages) and real-FTL
#: RunResult payloads gained the ftl metrics section.
#: sweep-7: the tenants evaluator landed (multi-initiator arbitration,
#: per-tenant log-binned tail percentiles, interference matrices) and
#: devices gained namespace→channel placement state.
CODE_VERSION = "sweep-7"


# ----------------------------------------------------------------------
# Content fingerprinting


def canonical(obj: Any) -> Any:
    """Reduce a model object to a JSON-safe canonical form.

    Dataclasses carry their qualified type name so that two schemes with
    identical fields (e.g. fixed vs adaptive BCH defaults) never collide;
    enums reduce to type + value.  Unsupported types raise ``TypeError``
    — the caller decides whether that makes the point uncacheable.

    An object may define ``__canonical__()`` to control its own
    fingerprint form — e.g. :class:`~repro.core.tracereplay.TraceWorkload`
    substitutes the trace file's content hash for its path, so moving a
    trace on disk never invalidates cached sweep results.
    """
    if hasattr(obj, "__canonical__"):
        return canonical(obj.__canonical__())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {f.name: canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
        return {"__dataclass__": type(obj).__qualname__, **body}
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__qualname__, "value": obj.value}
    if isinstance(obj, (bool, int, float, str)) or obj is None:
        return obj
    if isinstance(obj, Mapping):
        return {str(key): canonical(value)
                for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}")


@dataclass(frozen=True)
class SweepPoint:
    """One independent evaluation: an architecture under a workload.

    ``evaluator`` names a registered evaluation function; ``params`` are
    its keyword knobs (both are part of the fingerprint, so a parameter
    change is a cache miss).
    """

    name: str
    arch: Any
    workload: Any
    evaluator: str = "breakdown"
    params: Mapping[str, Any] = field(default_factory=dict)


def fingerprint(point: SweepPoint, salt: str = CODE_VERSION) -> str:
    """Stable content hash of everything that determines the payload."""
    document = {
        "salt": salt,
        "evaluator": point.evaluator,
        "params": canonical(dict(point.params)),
        "arch": canonical(point.arch),
        "workload": canonical(point.workload),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _seed_for(point: SweepPoint, key: Optional[str]) -> int:
    """Deterministic per-point RNG seed, identical serial or parallel."""
    if key is not None:
        return int(key[:16], 16)
    digest = hashlib.sha256(point.name.encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


# ----------------------------------------------------------------------
# Evaluators — module-level so worker processes can import them.


def _eval_breakdown(point: SweepPoint) -> Tuple[Dict[str, Any], int]:
    row, events = breakdown_with_events(
        point.arch, point.workload,
        max_commands=point.params.get("max_commands"))
    return dataclasses.asdict(row), events


def _eval_measure(point: SweepPoint) -> Tuple[Dict[str, Any], int]:
    params = dict(point.params)
    mode = DataPathMode(params.get("mode", DataPathMode.FULL.value))
    result = measure(point.arch, point.workload, mode=mode,
                     max_commands=params.get("max_commands"),
                     label=params.get("label", point.name),
                     preload_reads=params.get("preload_reads", True),
                     warm_start=params.get("warm_start", False))
    payload = result.to_dict()
    # Wall time is machine load, not simulation output; keep payloads
    # deterministic so cached and fresh runs agree byte for byte.
    payload["wall_seconds"] = 0.0
    return payload, result.events


def _eval_replay(point: SweepPoint) -> Tuple[Dict[str, Any], int]:
    """Real-trace replay (workload is a TraceWorkload).

    Deferred import: the replay machinery lives in
    :mod:`repro.core.tracereplay`, which imports this module's types.
    Being a module-level function here keeps it picklable for worker
    pools regardless of start method.
    """
    from .tracereplay import evaluate_replay_point
    return evaluate_replay_point(point)


def _eval_ftl(point: SweepPoint) -> Tuple[Dict[str, Any], int]:
    """Real-FTL trace replay (scheme zoo / DRAM-budget sweep points).

    Deferred import for the same reason as :func:`_eval_replay`:
    :mod:`repro.core.ftlsweep` imports this module's types.
    """
    from .ftlsweep import evaluate_ftl_point
    return evaluate_ftl_point(point)


def _eval_tenants(point: SweepPoint) -> Tuple[Dict[str, Any], int]:
    """Multi-tenant arbitration run (tenant-count × policy grid points).

    Deferred import for the same reason as :func:`_eval_replay`:
    :mod:`repro.core.tenantsweep` imports this module's types.
    """
    from .tenantsweep import evaluate_tenants_point
    return evaluate_tenants_point(point)


EVALUATORS: Dict[str, Callable[[SweepPoint], Tuple[Dict[str, Any], int]]] = {
    "breakdown": _eval_breakdown,
    "measure": _eval_measure,
    "replay": _eval_replay,
    "ftl": _eval_ftl,
    "tenants": _eval_tenants,
}


def _evaluate(point: SweepPoint, key: Optional[str],
              salt: str) -> Dict[str, Any]:
    """Run one point and wrap the result in a cache envelope."""
    evaluator = EVALUATORS.get(point.evaluator)
    if evaluator is None:
        raise ValueError(f"unknown evaluator {point.evaluator!r}; "
                         f"registered: {sorted(EVALUATORS)}")
    random.seed(_seed_for(point, key))
    started = time.perf_counter()
    payload, events = evaluator(point)
    return {
        "salt": salt,
        "name": point.name,
        "evaluator": point.evaluator,
        "payload": payload,
        "events": int(events),
        "elapsed_s": time.perf_counter() - started,
    }


class PointTimeout(Exception):
    """A sweep point exceeded the runner's per-point time budget."""


def _evaluate_guarded(point: SweepPoint, key: Optional[str], salt: str,
                      timeout_s: Optional[float]) -> Dict[str, Any]:
    """:func:`_evaluate`, but a crash or timeout becomes a *failure
    envelope* instead of an exception.

    Worker processes return these like any other result, so one diverging
    point cannot take down the sweep; the recorded traceback travels with
    the envelope for the summary report and the cache.
    """
    started = time.perf_counter()
    use_alarm = (timeout_s is not None and timeout_s > 0
                 and hasattr(signal, "SIGALRM"))
    previous = None
    if use_alarm:
        def on_alarm(signum, frame):
            raise PointTimeout(
                f"point {point.name!r} exceeded {timeout_s:.1f}s")
        try:
            previous = signal.signal(signal.SIGALRM, on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
        except ValueError:   # not in the main thread: run unguarded
            use_alarm = False
    try:
        return _evaluate(point, key, salt)
    except Exception as error:
        return {
            "salt": salt,
            "name": point.name,
            "evaluator": point.evaluator,
            "payload": {},
            "events": 0,
            "elapsed_s": time.perf_counter() - started,
            "failure": {
                "error_type": type(error).__name__,
                "message": str(error),
                "traceback": traceback.format_exc(),
            },
        }
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Result cache


class SweepCache:
    """Content-addressed JSON store: one file per evaluated point.

    A corrupted, truncated or structurally wrong file is a miss, never an
    error — the point is simply re-simulated and the entry rewritten.
    """

    def __init__(self, directory: str):
        self.directory = str(directory)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(envelope, dict) \
                or not isinstance(envelope.get("payload"), dict):
            return None
        return envelope

    def store(self, key: str, envelope: Dict[str, Any]) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle, sort_keys=True)
        os.replace(tmp, path)  # atomic: a killed sweep leaves no partials

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.directory)
                       if name.endswith(".json"))
        except OSError:
            return 0


# ----------------------------------------------------------------------
# Runner


@dataclass
class PointFailure:
    """Typed record of a point that crashed, timed out or was lost.

    Stored in the cache envelope (so post-mortems survive the run) but
    always treated as a cache *miss* on load — ``--resume`` re-runs
    failed points instead of replaying their failures.
    """

    error_type: str
    message: str
    traceback: str = ""

    def to_dict(self) -> Dict[str, str]:
        return {"error_type": self.error_type, "message": self.message,
                "traceback": self.traceback}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PointFailure":
        return cls(error_type=str(data.get("error_type", "Exception")),
                   message=str(data.get("message", "")),
                   traceback=str(data.get("traceback", "")))


@dataclass
class PointOutcome:
    """One point's result plus provenance."""

    name: str
    payload: Dict[str, Any]
    cached: bool
    events: int
    elapsed_s: float
    key: Optional[str]
    failure: Optional[PointFailure] = None

    @property
    def failed(self) -> bool:
        return self.failure is not None


@dataclass
class SweepSummary:
    """Aggregate accounting for one :meth:`SweepRunner.run` call.

    The three point counts are disjoint — ``total == cached + simulated
    + failed`` — so a resumed campaign over a warm cache reports its
    served points as ``cached``, never ``simulated``, and a fresh
    failure is ``failed``, not ``simulated``.
    """

    total: int
    cached: int
    simulated: int
    wall_seconds: float
    simulated_events: int
    workers: int
    failed: int = 0

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.simulated_events / self.wall_seconds

    def format(self) -> str:
        line = (f"sweep: {self.total} points "
                f"({self.cached} cached, {self.simulated} simulated"
                + (f", {self.failed} FAILED" if self.failed else "")
                + f") in {self.wall_seconds:.2f}s")
        if self.simulated:
            line += (f" — {self.events_per_sec / 1e3:.0f}k events/s "
                     f"across {self.workers} worker(s)")
        return line


@dataclass
class SweepResult:
    """Outcomes in input order + the sweep summary."""

    outcomes: List[PointOutcome]
    summary: SweepSummary

    def payloads(self) -> Dict[str, Dict[str, Any]]:
        return {outcome.name: outcome.payload for outcome in self.outcomes
                if not outcome.failed}

    def failures(self) -> List[PointOutcome]:
        """Failed points, in input order."""
        return [outcome for outcome in self.outcomes if outcome.failed]

    def format_failures(self) -> str:
        """Human-readable ``failed_points`` section for the sweep report."""
        failures = self.failures()
        if not failures:
            return ""
        lines = [f"failed_points: {len(failures)}"]
        for outcome in failures:
            lines.append(f"  {outcome.name}: "
                         f"{outcome.failure.error_type}: "
                         f"{outcome.failure.message}")
        return "\n".join(lines)


class SweepRunner:
    """Fans independent sweep points out over worker processes.

    ``workers=None`` uses every core; ``workers=1`` runs serially in
    process (no pool, no pickling).  With ``cache_dir`` set, finished
    points are flushed to the cache as they complete and future runs skip
    any point whose fingerprint already has an entry (disable reads with
    ``use_cache=False`` to force re-simulation while still writing).
    """

    def __init__(self, workers: Optional[int] = None,
                 cache_dir: Optional[str] = None,
                 use_cache: bool = True,
                 salt: str = CODE_VERSION,
                 progress: Optional[Callable[[PointOutcome, int, int],
                                             None]] = None,
                 timeout_s: Optional[float] = None,
                 pool_retries: int = 2,
                 retry_backoff_s: float = 0.5):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for all cores)")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if pool_retries < 0:
            raise ValueError("pool_retries must be >= 0")
        self.workers = workers if workers is not None \
            else (os.cpu_count() or 1)
        self.cache = SweepCache(cache_dir) if cache_dir else None
        self.use_cache = use_cache
        self.salt = salt
        self.progress = progress
        self.timeout_s = timeout_s
        self.pool_retries = pool_retries
        self.retry_backoff_s = retry_backoff_s
        self.last_summary: Optional[SweepSummary] = None
        self.last_result: Optional[SweepResult] = None

    # ------------------------------------------------------------------
    def run(self, points: Sequence[SweepPoint]) -> SweepResult:
        points = list(points)
        started = time.perf_counter()
        outcomes: List[Optional[PointOutcome]] = [None] * len(points)
        done = 0

        keys: List[Optional[str]] = []
        for point in points:
            try:
                keys.append(fingerprint(point, self.salt))
            except TypeError:
                keys.append(None)  # unhashable workload: run uncached

        pending: List[int] = []
        for index, (point, key) in enumerate(zip(points, keys)):
            envelope = None
            if self.cache is not None and self.use_cache and key is not None:
                envelope = self.cache.load(key)
            if envelope is not None and envelope.get("failure") is not None:
                # Recorded failures are post-mortem data, never results:
                # a resumed sweep re-runs the point from scratch.
                envelope = None
            if envelope is not None:
                outcomes[index] = PointOutcome(
                    name=point.name, payload=envelope["payload"],
                    cached=True, events=int(envelope.get("events", 0)),
                    elapsed_s=0.0, key=key)
                done += 1
                self._emit(outcomes[index], done, len(points))
            else:
                pending.append(index)

        def finish(index: int, envelope: Dict[str, Any]) -> None:
            nonlocal done
            if self.cache is not None and keys[index] is not None:
                self.cache.store(keys[index], envelope)
            failure = None
            if envelope.get("failure") is not None:
                failure = PointFailure.from_dict(envelope["failure"])
            outcomes[index] = PointOutcome(
                name=points[index].name, payload=envelope["payload"],
                cached=False, events=int(envelope["events"]),
                elapsed_s=float(envelope["elapsed_s"]), key=keys[index],
                failure=failure)
            done += 1
            self._emit(outcomes[index], done, len(points))

        # Cap the effective width at the actual core count: asking for
        # more workers than cores only buys ProcessPoolExecutor overhead
        # (BENCH_sweep.json measured "parallel" 7% slower than serial on
        # a 1-CPU box), and a cap of 1 degrades to the serial in-process
        # path — byte-identical payloads either way, per the determinism
        # contract.
        workers = min(self.workers, os.cpu_count() or 1,
                      max(1, len(pending)))
        if pending:
            if workers == 1 or len(pending) == 1:
                for index in pending:
                    finish(index, _evaluate_guarded(
                        points[index], keys[index], self.salt,
                        self.timeout_s))
            else:
                self._run_pool(points, keys, pending, workers, finish)

        wall = time.perf_counter() - started
        # Disjoint accounting: a fresh point that failed is "failed", not
        # "simulated", and cached + simulated + failed == total.
        simulated = [o for o in outcomes
                     if o is not None and not o.cached and not o.failed]
        summary = SweepSummary(
            total=len(points),
            cached=len(points) - len(pending),
            simulated=len(simulated),
            wall_seconds=wall,
            simulated_events=sum(o.events for o in simulated),
            workers=workers,
            failed=sum(1 for o in outcomes
                       if o is not None and o.failed),
        )
        self.last_summary = summary
        result = SweepResult(outcomes=list(outcomes), summary=summary)
        self.last_result = result
        return result

    # ------------------------------------------------------------------
    def _run_pool(self, points: Sequence[SweepPoint],
                  keys: Sequence[Optional[str]], pending: Sequence[int],
                  workers: int, finish: Callable[[int, Dict[str, Any]],
                                                 None]) -> None:
        """Fan pending points out, surviving worker-pool crashes.

        Ordinary point failures come back as failure envelopes (handled
        worker-side), so the only exception expected here is
        :class:`BrokenProcessPool` — a worker died hard (segfault, OOM
        kill).  The batch is retried on a fresh pool with exponential
        backoff; whatever still crashes the pool after the retry budget
        runs serially in-process, one point at a time, so a single killer
        point is isolated instead of sinking the sweep.
        """
        remaining = list(pending)
        backoff = self.retry_backoff_s
        for attempt in range(self.pool_retries + 1):
            if not remaining:
                return
            try:
                self._drain_pool(points, keys, remaining, workers, finish)
                return
            except BrokenProcessPool:
                if attempt < self.pool_retries:
                    time.sleep(backoff)
                    backoff *= 2
            except (OSError, ValueError, ImportError):
                # Platforms without usable multiprocessing: serial fallback.
                break
        for index in list(remaining):
            finish(index, _evaluate_guarded(points[index], keys[index],
                                            self.salt, self.timeout_s))
            remaining.remove(index)

    def _drain_pool(self, points: Sequence[SweepPoint],
                    keys: Sequence[Optional[str]], remaining: List[int],
                    workers: int, finish: Callable[[int, Dict[str, Any]],
                                                   None]) -> None:
        """One pool generation; drops finished indices from ``remaining``."""
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        with ProcessPoolExecutor(max_workers=min(workers, len(remaining)),
                                 mp_context=context) as pool:
            futures = {pool.submit(_evaluate_guarded, points[index],
                                   keys[index], self.salt,
                                   self.timeout_s): index
                       for index in remaining}
            for future in as_completed(futures):
                index = futures[future]
                finish(index, future.result())
                remaining.remove(index)

    def _emit(self, outcome: PointOutcome, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(outcome, done, total)


def print_progress(outcome: PointOutcome, done: int, total: int) -> None:
    """Default per-point progress line (the CLI's callback)."""
    if outcome.failed:
        status = (f"FAILED ({outcome.failure.error_type}: "
                  f"{outcome.failure.message})")
    elif outcome.cached:
        status = "cached"
    else:
        status = f"simulated in {outcome.elapsed_s:6.2f}s"
    print(f"[{done:>3}/{total}] {outcome.name:<24} {status}", flush=True)
