"""Fast-path calibration: fit the fidelity dial's closed-form models.

The fast abstraction levels (see :mod:`repro.ssd.fidelity`) ship with
analytic defaults derived from the timing dataclasses, but the honest
way to parameterize a high-level model is to *measure the detailed one*
(the SimpleSSD/Amber recipe).  :func:`calibrate` runs three short
cycle-accurate probes —

* **DRAM**: stream accesses of several sizes through a
  :class:`~repro.dram.controller.DramController` (refresh running) and
  least-squares fit ``elapsed = overhead + nbytes * ps_per_byte``;
* **CPU**: run the real firmware dispatch loop over the AHB and take
  its steady-state cycles per command;
* **NAND**: issue uncontended page program/read ops through a
  cycle-accurate channel controller and measure the residual between
  the phase chain and the closed form —

and returns a :class:`CalibrationResult` whose parameters slot straight
into a :class:`~repro.ssd.fidelity.FidelityConfig`.  Results persist in
a content-addressed JSON cache keyed by the timing models and the probe
definition (same scheme as the sweep cache), so re-calibrating is free
until the underlying models change.

:func:`fidelity_error_report` closes the loop: it reruns the checked-in
fig3/fig5 goldens at fast fidelity and reports the relative error per
figure metric against the golden files — the error-bound test tier
asserts the maximum stays within the declared bound (5% by default).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..dram.controller import DramController
from ..kernel import Simulator
from ..nand.geometry import PageAddress
from ..ssd.architecture import SsdArchitecture
from ..ssd.fidelity import Fidelity, FidelityConfig
from .sweep import CODE_VERSION, SweepCache, SweepRunner, canonical

#: Bump when the probe definitions change (folded into the cache key).
PROBE_VERSION = "calibrate-1"

#: Declared fast-vs-golden relative error bound (fig3/fig5 metrics).
DEFAULT_ERROR_BOUND = 0.05


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted fast-path parameters (see :class:`FidelityConfig`)."""

    dram_overhead_ps: int
    dram_ps_per_byte: float
    cpu_cycles: int
    nand_overhead_ps: int
    cached: bool = False

    def to_fidelity(self, default: str = Fidelity.FAST.value,
                    **levels: str) -> FidelityConfig:
        """A :class:`FidelityConfig` carrying these parameters.

        ``levels`` may override per-subsystem fidelity (e.g.
        ``dram="cycle"``).
        """
        return FidelityConfig(default=default,
                              dram_overhead_ps=self.dram_overhead_ps,
                              dram_ps_per_byte=self.dram_ps_per_byte,
                              cpu_cycles=self.cpu_cycles,
                              nand_overhead_ps=self.nand_overhead_ps,
                              **levels)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dram_overhead_ps": self.dram_overhead_ps,
            "dram_ps_per_byte": self.dram_ps_per_byte,
            "cpu_cycles": self.cpu_cycles,
            "nand_overhead_ps": self.nand_overhead_ps,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any],
                  cached: bool = False) -> "CalibrationResult":
        return cls(dram_overhead_ps=int(payload["dram_overhead_ps"]),
                   dram_ps_per_byte=float(payload["dram_ps_per_byte"]),
                   cpu_cycles=int(payload["cpu_cycles"]),
                   nand_overhead_ps=int(payload["nand_overhead_ps"]),
                   cached=cached)


# ----------------------------------------------------------------------
# Probes (cycle-accurate, short)


def _probe_dram(arch: SsdArchitecture,
                sizes: Tuple[int, ...] = (512, 2048, 4096, 16384),
                repeats: int = 16) -> Tuple[int, float]:
    """Fit ``elapsed = overhead + nbytes * ps_per_byte`` on one device.

    The probe streams sequential addresses exactly like the buffer
    manager's FIFO pattern, with refresh running, so the fit absorbs
    both the row-hit common case and the refresh bandwidth tax.
    """
    samples: List[Tuple[int, float]] = []
    for nbytes in sizes:
        sim = Simulator()
        dram = DramController(sim, "probe", arch.dram_timing,
                              enable_refresh=True)
        elapsed: List[int] = []
        address = 0

        def run(nbytes=nbytes):
            nonlocal address
            for __ in range(repeats):
                took = yield sim.process(dram.write(address, nbytes))
                elapsed.append(took)
                address += nbytes

        sim.run(until=sim.process(run()))
        samples.append((nbytes, sum(elapsed) / len(elapsed)))
    n = len(samples)
    mean_x = sum(x for x, __ in samples) / n
    mean_y = sum(y for __, y in samples) / n
    var = sum((x - mean_x) ** 2 for x, __ in samples)
    slope = sum((x - mean_x) * (y - mean_y) for x, y in samples) / var
    intercept = mean_y - slope * mean_x
    return max(0, int(round(intercept))), max(slope, 1e-9)


def _probe_cpu(n_commands: int = 32) -> int:
    """Steady-state firmware dispatch cost over the AHB, in cycles."""
    from ..cpu.firmware import FirmwareCpu
    from ..interconnect import AhbBus
    sim = Simulator()
    ahb = AhbBus(sim, "ahb")
    cpu = FirmwareCpu(sim, "cal", ahb=ahb)

    def feeder():
        for index in range(n_commands):
            yield sim.process(cpu.process_command(
                1, index * 8, 8, {"channel": index % 4, "way": 0, "die": 0}))

    sim.run(until=sim.process(feeder()))
    return int(round(cpu.cycles_retired / n_commands))


def _nand_op_elapsed(arch: SsdArchitecture, fast: bool,
                     nand_overhead_ps: int = 0) -> Tuple[int, int]:
    """(program_ps, read_ps) of one uncontended page op per fidelity."""
    from ..controller import ChannelWayController
    sim = Simulator()
    controller = ChannelWayController(
        sim, "probe", 1, 1, arch.geometry, arch.nand_timing,
        arch.wear_model, arch.onfi_timing, arch.ecc,
        gang_scheme=arch.gang_scheme, fast=fast,
        fast_overhead_ps=nand_overhead_ps)
    out: Dict[str, int] = {}

    def run():
        address = PageAddress(0, 0, 0)
        out["program"] = yield sim.process(
            controller.program_page(0, 0, address))
        out["read"] = yield sim.process(controller.read_page(0, 0, address))

    sim.run(until=sim.process(run()))
    return out["program"], out["read"]


def _probe_nand(arch: SsdArchitecture) -> int:
    """Residual overhead the fast closed form must add per op (ps).

    Deterministic timing jitter (``_block_jitter``) is identical across
    fidelities for the same address, so the uncontended difference is
    exactly the phase-chain residue the single-tenure model folds away.
    """
    cycle_program, cycle_read = _nand_op_elapsed(arch, fast=False)
    fast_program, fast_read = _nand_op_elapsed(arch, fast=True)
    residual = ((cycle_program - fast_program)
                + (cycle_read - fast_read)) / 2
    return max(0, int(round(residual)))


# ----------------------------------------------------------------------
# Cache + entry point


def calibration_key(arch: SsdArchitecture) -> str:
    """Content hash of everything the probe outcomes depend on."""
    document = {
        "salt": f"{CODE_VERSION}/{PROBE_VERSION}",
        "dram_timing": canonical(arch.dram_timing),
        "onfi_timing": canonical(arch.onfi_timing),
        "nand_timing": canonical(arch.nand_timing),
        "wear_model": canonical(arch.wear_model),
        "geometry": canonical(arch.geometry),
        "ecc": canonical(arch.ecc),
        "gang_scheme": canonical(arch.gang_scheme),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: Default on-disk location for calibration entries (repo-relative).
DEFAULT_CACHE_DIR = os.path.join(".sweep-cache", "calibration")


def calibrate(arch: Optional[SsdArchitecture] = None,
              cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
              use_cache: bool = True) -> CalibrationResult:
    """Fit (or load) the fast-path parameters for an architecture.

    Deterministic: two runs against the same timing models produce the
    same parameters, so the content-addressed cache entry is stable.
    ``cache_dir=None`` disables persistence.
    """
    arch = arch or SsdArchitecture()
    cache = SweepCache(cache_dir) if cache_dir else None
    key = calibration_key(arch)
    if cache is not None and use_cache:
        envelope = cache.load(key)
        if envelope is not None:
            try:
                return CalibrationResult.from_dict(envelope["payload"],
                                                   cached=True)
            except (KeyError, TypeError, ValueError):
                pass  # malformed entry: recalibrate and rewrite
    dram_overhead_ps, dram_ps_per_byte = _probe_dram(arch)
    result = CalibrationResult(
        dram_overhead_ps=dram_overhead_ps,
        dram_ps_per_byte=dram_ps_per_byte,
        cpu_cycles=_probe_cpu(),
        nand_overhead_ps=_probe_nand(arch),
    )
    if cache is not None:
        cache.store(key, {
            "salt": f"{CODE_VERSION}/{PROBE_VERSION}",
            "name": "calibration",
            "evaluator": "calibrate",
            "payload": result.to_dict(),
            "events": 0,
            "elapsed_s": 0.0,
        })
    return result


def fast_architecture(arch: Optional[SsdArchitecture] = None,
                      calibration: Optional[CalibrationResult] = None,
                      cache_dir: Optional[str] = DEFAULT_CACHE_DIR,
                      **levels: str) -> SsdArchitecture:
    """An architecture dialed to calibrated fast fidelity.

    Convenience wrapper: calibrates (or loads the cached fit) and
    applies the resulting config; ``levels`` override per subsystem.
    """
    arch = arch or SsdArchitecture()
    calibration = calibration or calibrate(arch, cache_dir=cache_dir)
    return arch.with_fidelity(calibration.to_fidelity(**levels))


# ----------------------------------------------------------------------
# Error report: fast vs the checked-in goldens


def fidelity_error_report(fidelity: Optional[FidelityConfig] = None,
                          bound: float = DEFAULT_ERROR_BOUND,
                          repo_root: str = ".") -> Dict[str, Any]:
    """Relative error of fast-fidelity fig3/fig5 vs the golden files.

    Reruns the exact golden experiment definitions (fig3: C1+C6 at 120
    commands; fig5: endpoint fractions at 80 commands) with ``fidelity``
    applied and compares metric by metric against the checked-in JSON.
    The ``HOST ideal`` bar is analytic (identical by construction) and
    is excluded from the maximum.
    """
    from .experiments import fig3_sweep, fig5_wearout_sweep
    from .goldens import load_golden
    if bound <= 0:
        raise ValueError("bound must be positive")
    fidelity = fidelity or FidelityConfig(default=Fidelity.FAST.value)

    errors: Dict[str, float] = {}

    golden3 = load_golden("fig3", repo_root)
    fast3 = fig3_sweep(n_commands=120, configs=sorted(golden3),
                       runner=SweepRunner(workers=1), fidelity=fidelity)
    for config, bars in sorted(golden3.items()):
        row = fast3[config].as_dict()
        for bar, reference in sorted(bars.items()):
            if bar == "HOST ideal":
                continue
            errors[f"fig3/{config}/{bar}"] = _relative_error(
                row[bar], reference)

    golden5 = load_golden("fig5", repo_root)
    fractions = sorted({fraction for points in golden5.values()
                        for fraction, __ in points})
    fast5 = fig5_wearout_sweep(fractions=fractions, n_commands=80,
                               runner=SweepRunner(workers=1),
                               fidelity=fidelity)
    for key, points in sorted(golden5.items()):
        fast_points = dict(fast5[key])
        for fraction, reference in points:
            errors[f"fig5/{key}/{fraction}"] = _relative_error(
                fast_points[fraction], reference)

    max_metric = max(errors, key=errors.get)
    return {
        "bound": bound,
        "fidelity": canonical(fidelity),
        "errors": errors,
        "max_rel_error": errors[max_metric],
        "max_metric": max_metric,
        "within_bound": errors[max_metric] <= bound,
    }


def _relative_error(measured: float, reference: float) -> float:
    if reference == 0:
        return abs(measured)
    return abs(measured - reference) / abs(reference)
