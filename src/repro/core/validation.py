"""Fig. 2 validation against the OCZ Vertex 120 GB reference.

The paper validates SSDExplorer against a physical OCZ Vertex 120 GB with
IOZone (4 KiB blocks) and reports error margins of **8 %** (sequential
write), **0.1 %** (sequential read), **6 %** (random write) and **2 %**
(random read) — without tabulating the raw device numbers.

We cannot measure a 2009 SATA drive here, so the reference values below
are *synthesized*: the simulated barefoot-like configuration is taken as
ground truth and the "device" numbers are offset by exactly the error
margins the paper reports (documented substitution — see DESIGN.md).  The
validation harness then demonstrates the same comparison machinery a user
with real hardware would run, and the regression tests pin the simulator
to those reference values so accuracy drift is caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..host.workload import (random_read, random_write, sequential_read,
                             sequential_write)
from ..ssd.architecture import SsdArchitecture
from ..ssd.scenarios import measure
from .experiments import validation_config

#: Paper-reported relative error of SSDExplorer vs the OCZ Vertex.
PAPER_ERROR_MARGINS = {
    "SW": 0.08,
    "SR": 0.001,
    "RW": 0.06,
    "RR": 0.02,
}

#: Reference throughputs (MB/s) standing in for the OCZ Vertex 120 GB.
#: Derived from the simulated barefoot-like configuration offset by the
#: paper's error margins (sign chosen so the simulator over-reports
#: writes and under-reports reads, as WAF-theory approximations do).
REFERENCE_MBPS = {
    "SW": 57.0,
    "SR": 124.0,
    "RW": 21.3,
    "RR": 121.7,
}


@dataclass
class ValidationPoint:
    """One workload's simulator-vs-device comparison."""

    workload: str
    simulated_mbps: float
    reference_mbps: float

    @property
    def relative_error(self) -> float:
        return abs(self.simulated_mbps - self.reference_mbps) \
            / self.reference_mbps


def run_validation(n_commands: int = 1600,
                   arch: SsdArchitecture = None) -> Dict[str, ValidationPoint]:
    """Run the four IOZone workloads and compare against the reference."""
    arch = arch or validation_config()
    total = 4096 * n_commands
    workloads = {
        "SW": (sequential_write(total), True),
        "SR": (sequential_read(total), False),
        "RW": (random_write(total, span_bytes=64 << 20), True),
        "RR": (random_read(total, span_bytes=64 << 20), False),
    }
    points = {}
    for name, (workload, warm) in workloads.items():
        result = measure(arch, workload, warm_start=warm,
                         label=f"fig2/{name}")
        points[name] = ValidationPoint(
            workload=name,
            simulated_mbps=result.sustained_mbps,
            reference_mbps=REFERENCE_MBPS[name],
        )
    return points
