"""Pluggable FTL scheme registry: mapping granularity as a DSE axis.

The paper frames the CPU/FTL layer as plug-&-play firmware; this module
makes the *mapping scheme* — and the controller DRAM it costs — a
first-class design-space parameter:

* ``pagemap``  — the :class:`~repro.ftl.pagemap.PageMapFtl` reference:
  one entry per logical page, the whole table resident in DRAM.
* ``groupmap`` / ``blockmap`` — :class:`GroupMapFtl`: one entry per group
  of consecutive logical pages (a whole erase block for ``blockmap``).
  The table shrinks by the group factor; any sub-group overwrite pays a
  read-modify-write of the group's other live pages.
* ``dftl`` — :class:`DftlFtl`: demand-paged page mapping a la DFTL
  (Gupta et al., ASPLOS'09).  The full table lives on flash in
  *translation pages*; DRAM holds a small global translation directory
  plus a cached subset sized by the sweepable ``ftl_dram_bytes`` budget.
  A miss issues a real backend read of the translation page; evicting a
  dirty one issues a real program.

Every scheme exposes the same :class:`~repro.ftl.pagemap.PageMapFtl`
surface (write/read/trim/lookup/waf/counters) plus
``mapping_footprint()``, so the sweep engine can chart WAF / latency /
mapping-table bytes across schemes and DRAM budgets.
:func:`scheme_footprint` predicts the same footprint without building an
FTL (used by reports and the CLI's scheme table).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .pagemap import FlashBackend, FtlError, PageMapFtl

#: Bytes per physical-page-number entry (32-bit PPN, the common choice
#: for drives below 16 TiB at 4 KiB pages).
ENTRY_BYTES = 4

#: Default group size (logical pages per map entry) for ``groupmap``.
DEFAULT_GROUP_PAGES = 8


@dataclass(frozen=True)
class MappingFootprint:
    """Where a scheme's mapping metadata lives and how big it is."""

    scheme: str
    #: Bytes per mapping entry.
    entry_bytes: int
    #: Entries in the full logical-to-physical table.
    table_entries: int
    #: Bytes of the full table (wherever it is stored).
    table_bytes: int
    #: Bytes resident in controller DRAM (table, cache and directory).
    dram_bytes: int
    #: Bytes of mapping metadata stored on flash (0 if DRAM-resident).
    flash_bytes: int
    #: Fraction of the table reachable without a flash access.
    cached_fraction: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "entry_bytes": self.entry_bytes,
            "table_entries": self.table_entries,
            "table_bytes": self.table_bytes,
            "dram_bytes": self.dram_bytes,
            "flash_bytes": self.flash_bytes,
            "cached_fraction": self.cached_fraction,
        }


class GroupMapFtl(PageMapFtl):
    """Group-mapped FTL: one table entry per ``group_pages`` logical pages.

    A host write rewrites the *whole group* log-structured (the target
    page plus every other currently-live page of the group, relocated
    via read-modify-write), so consecutive group pages always land
    contiguously and a single entry can describe them.  Classic
    block-mapping economics: the table shrinks by the group factor while
    random sub-group overwrites multiply the write traffic.
    """

    scheme_name = "groupmap"

    def __init__(self, backend: FlashBackend, logical_pages: int,
                 group_pages: int = DEFAULT_GROUP_PAGES,
                 gc_low_watermark: int = 2,
                 static_wl_threshold: int = 0):
        if group_pages < 1:
            raise FtlError(f"group_pages must be >= 1, got {group_pages}")
        super().__init__(backend, logical_pages,
                         gc_low_watermark=gc_low_watermark,
                         static_wl_threshold=static_wl_threshold)
        self.group_pages = group_pages

    def _pick_group_die(self) -> int:
        """Die with the most room (ties to the lowest index).

        Groups land whole on one die, so the base FTL's round-robin can
        starve a die: the group's programs hit the robin's pick while its
        invalidations land wherever the group previously lived.  Writing
        to the roomiest die keeps the pools balanced by construction.
        """
        def room(die: int) -> int:
            active = self._active[die]
            slack = 0 if active is None \
                else self.backend.pages - active.write_pointer
            return slack + len(self._free[die]) * self.backend.pages

        return max(range(self.backend.n_dies),
                   key=lambda die: (room(die), -die))

    def write(self, logical_page: int):
        self._check_lpn(logical_page)
        start = logical_page - logical_page % self.group_pages
        end = min(start + self.group_pages, self.logical_pages)
        die = self._pick_group_die()
        location = None
        for page in range(start, end):
            if page == logical_page:
                location = self._program_page(page, die=die)
            else:
                previous = self._map.get(page)
                if previous is not None:
                    self.backend.read(previous)
                    self._program_page(page, die=die)
                    self.rmw_relocations += 1
        self.host_writes += 1
        self._collect_if_needed(die)
        return location

    def mapping_footprint(self) -> MappingFootprint:
        return scheme_footprint(self.scheme_name, self.logical_pages,
                                page_bytes=0,
                                group_pages=self.group_pages)


class DftlFtl(PageMapFtl):
    """DFTL-style page mapping under a DRAM budget.

    The authoritative page map is *stored on flash*: logical pages
    ``[data_pages, data_pages + translation_pages)`` of the underlying
    page-map machinery hold the translation pages, so they are
    log-written, garbage-collected and wear-leveled like any data — the
    in-memory map doubles as the (small, DRAM-resident) global
    translation directory.  DRAM additionally caches whole translation
    pages (the CMT); ``ftl_dram_bytes`` sizes directory + cache:

    * CMT miss on a translation page that has been written → a real
      backend **read** of its current flash location,
    * dirty CMT eviction → a real backend **program** of a fresh
      translation page (counted in ``translation_writes`` and in WAF).

    A budget large enough for the whole table degenerates to ``pagemap``
    behavior (every access hits); a tiny budget thrashes.
    """

    scheme_name = "dftl"

    def __init__(self, backend: FlashBackend, logical_pages: int,
                 page_bytes: int,
                 ftl_dram_bytes: Optional[int] = None,
                 gc_low_watermark: int = 2,
                 static_wl_threshold: int = 0):
        if page_bytes < ENTRY_BYTES:
            raise FtlError(f"page_bytes must be >= {ENTRY_BYTES}, "
                           f"got {page_bytes}")
        self.page_bytes = page_bytes
        self.entries_per_tpage = max(1, page_bytes // ENTRY_BYTES)
        self.data_pages = logical_pages
        self.translation_pages = -(-logical_pages // self.entries_per_tpage)
        super().__init__(backend,
                         logical_pages + self.translation_pages,
                         gc_low_watermark=gc_low_watermark,
                         static_wl_threshold=static_wl_threshold)
        gtd_bytes = self.translation_pages * ENTRY_BYTES
        tpage_bytes = self.entries_per_tpage * ENTRY_BYTES
        if ftl_dram_bytes is None:
            self.cached_tpages = self.translation_pages
        else:
            self.cached_tpages = (ftl_dram_bytes - gtd_bytes) // tpage_bytes
            if self.cached_tpages < 1:
                raise FtlError(
                    f"ftl_dram_bytes={ftl_dram_bytes} cannot hold the "
                    f"translation directory ({gtd_bytes} B) plus one "
                    f"cached translation page ({tpage_bytes} B)")
            self.cached_tpages = min(self.cached_tpages,
                                     self.translation_pages)
        self.ftl_dram_bytes = ftl_dram_bytes
        #: tpage index -> dirty flag, in LRU order (front = LRU).
        self._cmt: "OrderedDict[int, bool]" = OrderedDict()
        self.cmt_hits = 0
        self.cmt_misses = 0
        self.translation_reads = 0

    # -- public API guards against the *data* address space ------------
    def _check_data_lpn(self, logical_page: int) -> None:
        if not 0 <= logical_page < self.data_pages:
            raise FtlError(f"logical page {logical_page} out of range "
                           f"[0, {self.data_pages})")

    def lookup(self, logical_page: int):
        self._check_data_lpn(logical_page)
        return super().lookup(logical_page)

    def read(self, logical_page: int):
        self._check_data_lpn(logical_page)
        self._touch_mapping(logical_page, dirty=False)
        return super().read(logical_page)

    def write(self, logical_page: int):
        self._check_data_lpn(logical_page)
        self._touch_mapping(logical_page, dirty=True)
        return super().write(logical_page)

    def trim(self, logical_page: int) -> None:
        self._check_data_lpn(logical_page)
        self._touch_mapping(logical_page, dirty=True)
        super().trim(logical_page)

    # -- cached mapping table ------------------------------------------
    def _touch_mapping(self, logical_page: int, dirty: bool) -> None:
        tpage = logical_page // self.entries_per_tpage
        if tpage in self._cmt:
            self.cmt_hits += 1
            self._cmt.move_to_end(tpage)
            if dirty:
                self._cmt[tpage] = True
            return
        self.cmt_misses += 1
        location = self._map.get(self.data_pages + tpage)
        if location is not None:
            # The mapping lives on flash: fetch it for real.
            self.backend.read(location)
            self.translation_reads += 1
        while len(self._cmt) >= self.cached_tpages:
            victim, victim_dirty = self._cmt.popitem(last=False)
            if victim_dirty:
                self._write_translation_page(victim)
        self._cmt[tpage] = dirty

    def _write_translation_page(self, tpage: int) -> None:
        location = self._program_page(self.data_pages + tpage)
        self.translation_writes += 1
        # Translation programs consume space like any write; keep the
        # garbage collector's watermark promise on their die too.
        self._collect_if_needed(location[0])

    def counters(self) -> Dict[str, object]:
        out = super().counters()
        out.update({
            "cmt_hits": self.cmt_hits,
            "cmt_misses": self.cmt_misses,
            "translation_reads": self.translation_reads,
        })
        return out

    def mapping_footprint(self) -> MappingFootprint:
        return scheme_footprint(self.scheme_name, self.data_pages,
                                page_bytes=self.page_bytes,
                                ftl_dram_bytes=self.ftl_dram_bytes)


def _pagemap_footprint(logical_pages: int, page_bytes: int,
                       ftl_dram_bytes: Optional[int],
                       group_pages: int) -> MappingFootprint:
    table_bytes = logical_pages * ENTRY_BYTES
    return MappingFootprint(
        scheme="pagemap", entry_bytes=ENTRY_BYTES,
        table_entries=logical_pages, table_bytes=table_bytes,
        dram_bytes=table_bytes, flash_bytes=0, cached_fraction=1.0)


def _groupmap_footprint(logical_pages: int, page_bytes: int,
                        ftl_dram_bytes: Optional[int],
                        group_pages: int) -> MappingFootprint:
    entries = -(-logical_pages // max(1, group_pages))
    table_bytes = entries * ENTRY_BYTES
    return MappingFootprint(
        scheme="groupmap", entry_bytes=ENTRY_BYTES,
        table_entries=entries, table_bytes=table_bytes,
        dram_bytes=table_bytes, flash_bytes=0, cached_fraction=1.0)


def _dftl_footprint(logical_pages: int, page_bytes: int,
                    ftl_dram_bytes: Optional[int],
                    group_pages: int) -> MappingFootprint:
    entries_per_tpage = max(1, page_bytes // ENTRY_BYTES)
    tpages = -(-logical_pages // entries_per_tpage)
    gtd_bytes = tpages * ENTRY_BYTES
    tpage_bytes = entries_per_tpage * ENTRY_BYTES
    if ftl_dram_bytes is None:
        cached = tpages
    else:
        cached = min(max(0, (ftl_dram_bytes - gtd_bytes) // tpage_bytes),
                     tpages)
    return MappingFootprint(
        scheme="dftl", entry_bytes=ENTRY_BYTES,
        table_entries=logical_pages,
        table_bytes=logical_pages * ENTRY_BYTES,
        dram_bytes=gtd_bytes + cached * tpage_bytes,
        flash_bytes=tpages * page_bytes,
        cached_fraction=(cached / tpages) if tpages else 1.0)


@dataclass(frozen=True)
class FtlScheme:
    """One registry entry: how to build the FTL and cost its table."""

    name: str
    description: str
    factory: Callable[..., PageMapFtl]
    footprint: Callable[[int, int, Optional[int], int], MappingFootprint]
    #: Whether ``ftl_dram_bytes`` changes this scheme's behavior (the
    #: sweep engine only expands DRAM budgets for schemes that react).
    dram_sensitive: bool = False


def _make_pagemap(backend, logical_pages, page_bytes, ftl_dram_bytes,
                  group_pages, **kwargs) -> PageMapFtl:
    return PageMapFtl(backend, logical_pages, **kwargs)


def _make_groupmap(backend, logical_pages, page_bytes, ftl_dram_bytes,
                   group_pages, **kwargs) -> GroupMapFtl:
    return GroupMapFtl(backend, logical_pages,
                       group_pages=group_pages or DEFAULT_GROUP_PAGES,
                       **kwargs)


def _make_blockmap(backend, logical_pages, page_bytes, ftl_dram_bytes,
                   group_pages, **kwargs) -> GroupMapFtl:
    ftl = GroupMapFtl(backend, logical_pages,
                      group_pages=group_pages or backend.pages, **kwargs)
    ftl.scheme_name = "blockmap"
    return ftl


def _make_dftl(backend, logical_pages, page_bytes, ftl_dram_bytes,
               group_pages, **kwargs) -> DftlFtl:
    return DftlFtl(backend, logical_pages, page_bytes=page_bytes,
                   ftl_dram_bytes=ftl_dram_bytes, **kwargs)


def _blockmap_footprint(logical_pages: int, page_bytes: int,
                        ftl_dram_bytes: Optional[int],
                        group_pages: int) -> MappingFootprint:
    entries = -(-logical_pages // max(1, group_pages))
    table_bytes = entries * ENTRY_BYTES
    return MappingFootprint(
        scheme="blockmap", entry_bytes=ENTRY_BYTES,
        table_entries=entries, table_bytes=table_bytes,
        dram_bytes=table_bytes, flash_bytes=0, cached_fraction=1.0)


FTL_SCHEMES: Dict[str, FtlScheme] = {}


def register_scheme(scheme: FtlScheme) -> FtlScheme:
    """Add (or replace) a scheme in the registry."""
    FTL_SCHEMES[scheme.name] = scheme
    return scheme


register_scheme(FtlScheme(
    name="pagemap",
    description="page-granularity map, fully DRAM-resident (reference)",
    factory=_make_pagemap, footprint=_pagemap_footprint))
register_scheme(FtlScheme(
    name="groupmap",
    description=f"one entry per {DEFAULT_GROUP_PAGES}-page group; "
                "sub-group overwrites pay read-modify-write",
    factory=_make_groupmap, footprint=_groupmap_footprint))
register_scheme(FtlScheme(
    name="blockmap",
    description="one entry per erase block (group = pages_per_block)",
    factory=_make_blockmap, footprint=_blockmap_footprint))
register_scheme(FtlScheme(
    name="dftl",
    description="demand-paged map on flash; DRAM budget sizes the cached "
                "mapping table (misses read, dirty evictions program)",
    factory=_make_dftl, footprint=_dftl_footprint, dram_sensitive=True))


def scheme_names() -> List[str]:
    """Registered scheme names, registration order."""
    return list(FTL_SCHEMES)


def get_scheme(name: str) -> FtlScheme:
    scheme = FTL_SCHEMES.get(name)
    if scheme is None:
        raise FtlError(f"unknown FTL scheme {name!r}; registered: "
                       f"{scheme_names()}")
    return scheme


def make_ftl(name: str, backend: FlashBackend, logical_pages: int,
             page_bytes: int, ftl_dram_bytes: Optional[int] = None,
             group_pages: int = 0, **kwargs) -> PageMapFtl:
    """Build a registered scheme's FTL over ``backend``.

    ``group_pages`` 0 means the scheme default; extra ``kwargs``
    (``gc_low_watermark``, ``static_wl_threshold``) pass through to the
    underlying FTL.
    """
    scheme = get_scheme(name)
    return scheme.factory(backend, logical_pages, page_bytes,
                          ftl_dram_bytes, group_pages, **kwargs)


def scheme_footprint(name: str, logical_pages: int, page_bytes: int,
                     ftl_dram_bytes: Optional[int] = None,
                     group_pages: int = 0) -> MappingFootprint:
    """Predict a scheme's mapping footprint without building it.

    For ``groupmap``/``blockmap`` pass the effective ``group_pages``
    (``blockmap`` callers use the geometry's pages per block);
    ``page_bytes`` only matters for flash-resident schemes.
    """
    scheme = get_scheme(name)
    return scheme.footprint(logical_pages, page_bytes, ftl_dram_bytes,
                            group_pages or DEFAULT_GROUP_PAGES)


# The reference scheme reports a footprint too, via the same model.
def _pagemap_mapping_footprint(self: PageMapFtl) -> MappingFootprint:
    return _pagemap_footprint(self.logical_pages, 0, None, 0)


PageMapFtl.mapping_footprint = _pagemap_mapping_footprint
