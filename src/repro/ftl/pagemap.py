"""A real page-mapping FTL (the "actual FTL" alternative to WAF mode).

The paper's CPU model "provid[es] an environment for custom FTL
development" so that "a full SSD firmware can be implemented and
interchanged in a plug & play way".  This module is that full FTL:

* page-granularity logical-to-physical mapping,
* per-die allocation pools with an active block and a free-block queue,
* greedy garbage collection (victim = fewest valid pages, tracked in a
  per-die lazy min-heap so victim selection is O(log blocks)),
* dynamic wear leveling (fresh allocations pick the coldest free block),
* TRIM support (invalidate without rewrite).

It operates against a :class:`FlashBackend` protocol so the same logic is
unit-testable against an instant in-memory backend and pluggable onto the
timed NAND dies of the full platform.  Alternative mapping granularities
(group/block mapping, DFTL-style cached mapping) subclass it — see
:mod:`repro.ftl.schemes`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

PhysicalPage = Tuple[int, int, int, int]  # (die, plane, block, page)


class FtlError(Exception):
    """FTL invariant violation or capacity exhaustion."""


class FlashBackend:
    """Minimal flash API the FTL drives (in-memory reference version).

    Timing-free; the integrated platform substitutes an adapter that
    forwards these calls onto simulated dies.
    """

    def __init__(self, n_dies: int, planes: int, blocks: int, pages: int):
        self.n_dies = n_dies
        self.planes = planes
        self.blocks = blocks
        self.pages = pages
        self.pe_cycles: Dict[Tuple[int, int, int], int] = {}
        self.programs = 0
        self.reads = 0
        self.erases = 0

    def program(self, page: PhysicalPage) -> None:
        self.programs += 1

    def read(self, page: PhysicalPage) -> None:
        self.reads += 1

    def erase(self, die: int, plane: int, block: int) -> None:
        key = (die, plane, block)
        self.pe_cycles[key] = self.pe_cycles.get(key, 0) + 1
        self.erases += 1

    def pe_of(self, die: int, plane: int, block: int) -> int:
        return self.pe_cycles.get((die, plane, block), 0)


class JournalingBackend(FlashBackend):
    """A backend that records every operation in order.

    The timed platform uses this to mirror the FTL's instantaneous
    decisions onto simulated NAND dies: call the FTL, drain the journal,
    replay each entry as a timed operation.
    """

    def __init__(self, n_dies: int, planes: int, blocks: int, pages: int):
        super().__init__(n_dies, planes, blocks, pages)
        self.journal: List[Tuple[str, Tuple[int, ...]]] = []

    def program(self, page: PhysicalPage) -> None:
        super().program(page)
        self.journal.append(("program", page))

    def read(self, page: PhysicalPage) -> None:
        super().read(page)
        self.journal.append(("read", page))

    def erase(self, die: int, plane: int, block: int) -> None:
        super().erase(die, plane, block)
        self.journal.append(("erase", (die, plane, block)))

    def drain(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """Return and clear the accumulated operations."""
        entries, self.journal = self.journal, []
        return entries


@dataclass
class BlockInfo:
    """Book-keeping for one physical block."""

    die: int
    plane: int
    block: int
    write_pointer: int = 0
    valid_pages: Set[int] = field(default_factory=set)  # page indices
    #: Monotonic allocation sequence number: distinguishes this lifetime
    #: of the physical block from earlier ones (stale victim-heap entries
    #: carry the old sequence and are discarded on sight).
    alloc_seq: int = 0

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.die, self.plane, self.block)


class PageMapFtl:
    """Greedy-GC page-mapping FTL with dynamic wear leveling and TRIM."""

    def __init__(self, backend: FlashBackend, logical_pages: int,
                 gc_low_watermark: int = 2,
                 static_wl_threshold: int = 0):
        physical_pages = (backend.n_dies * backend.planes * backend.blocks
                          * backend.pages)
        min_spare_blocks = backend.n_dies * (gc_low_watermark + 1)
        spare_pages = physical_pages - logical_pages
        if spare_pages < min_spare_blocks * backend.pages:
            raise FtlError(
                f"insufficient over-provisioning: {spare_pages} spare pages "
                f"for {min_spare_blocks} required spare blocks")
        self.backend = backend
        self.logical_pages = logical_pages
        self.gc_low_watermark = gc_low_watermark
        #: Static wear leveling: when the P/E spread across a die's blocks
        #: exceeds this threshold, cold data is migrated off the coldest
        #: block so it re-enters circulation.  0 disables the policy
        #: (dynamic wear leveling alone).
        self.static_wl_threshold = static_wl_threshold
        self.static_wl_migrations = 0

        self._map: Dict[int, PhysicalPage] = {}
        self._blocks: Dict[Tuple[int, int, int], BlockInfo] = {}
        #: block key -> {page index -> logical page}, for GC relocation.
        self._lpn_of: Dict[Tuple[int, int, int], Dict[int, int]] = {}
        self._free: List[List[Tuple[int, int, int]]] = [
            [] for __ in range(backend.n_dies)]
        self._active: List[Optional[BlockInfo]] = [None] * backend.n_dies
        #: Per-die lazy min-heaps of GC candidates:
        #: (valid_count, alloc_seq, key).  Entries go stale when the
        #: block is invalidated further, erased or re-allocated; they are
        #: validated against the live BlockInfo on pop.  The ordering
        #: (fewest valid pages, then earliest allocation) reproduces the
        #: original linear scan's choice byte for byte.
        self._victims: List[List[Tuple[int, int, Tuple[int, int, int]]]] = [
            [] for __ in range(backend.n_dies)]
        #: Dies whose GC state may have changed since the last collection
        #: pass (host program, invalidation, wear-level migration).  Only
        #: these are re-checked per write — the all-die rescan it
        #: replaces re-derived a no-op answer for every other die.
        self._gc_pending: Set[int] = set()
        self._alloc_counter = 0
        self._next_die = 0
        self.host_writes = 0
        self.gc_relocations = 0
        #: Page copies performed by static wear leveling (reported apart
        #: from GC relocations so neither is double-counted).
        self.static_wl_relocations = 0
        #: Read-modify-write copies charged by coarse-grained schemes
        #: (always 0 for the page-map reference).
        self.rmw_relocations = 0
        #: Translation-metadata page programs (DFTL-style schemes;
        #: always 0 for the page-map reference).
        self.translation_writes = 0
        #: Collections skipped because no die had room to relocate the
        #: best victim's valid pages (GC starvation fallback).
        self.gc_deferrals = 0
        #: Collections whose valid pages were relocated onto a *different*
        #: die because the victim's own die could not absorb them (the
        #: cross-die starvation escape; without it a die at zero free
        #: blocks with a full active block can never collect anything).
        self.gc_spills = 0
        #: Collection passes abandoned because collecting freed no net
        #: block (every candidate fully valid — relocation would churn
        #: pages forever without reclaiming space).
        self.gc_stalls = 0
        #: Unpinned writes redirected off a die that had no room left
        #: (starvation fallback; the round-robin choice is advisory).
        self.write_redirects = 0
        self.trims = 0

        for die in range(backend.n_dies):
            for plane in range(backend.planes):
                for block in range(backend.blocks):
                    self._free[die].append((die, plane, block))

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def lookup(self, logical_page: int) -> Optional[PhysicalPage]:
        """Current physical location of a logical page (None if unmapped)."""
        self._check_lpn(logical_page)
        return self._map.get(logical_page)

    def read(self, logical_page: int) -> Optional[PhysicalPage]:
        """Read: returns the physical page accessed (None if never written)."""
        location = self.lookup(logical_page)
        if location is not None:
            self.backend.read(location)
        return location

    def write(self, logical_page: int) -> PhysicalPage:
        """Host write; returns the new physical location."""
        self._check_lpn(logical_page)
        location = self._program_page(logical_page)
        self.host_writes += 1
        self._collect_if_needed(location[0])
        return location

    def trim(self, logical_page: int) -> None:
        """Invalidate a logical page without rewriting it."""
        self._check_lpn(logical_page)
        location = self._map.pop(logical_page, None)
        if location is not None:
            self._invalidate(location)
            self.trims += 1

    @property
    def relocated_writes(self) -> int:
        """All non-host page programs: GC + static WL + RMW + translation."""
        return (self.gc_relocations + self.static_wl_relocations
                + self.rmw_relocations + self.translation_writes)

    @property
    def waf(self) -> float:
        """Measured write amplification.

        ``inf`` when background relocations occurred before any host
        write (e.g. a pure wear-leveling phase): the amplification is
        unbounded against zero host traffic, and reporting 1.0 would
        hide the relocation traffic entirely.
        """
        if self.host_writes == 0:
            return float("inf") if self.relocated_writes else 1.0
        return (self.host_writes + self.relocated_writes) / self.host_writes

    def mapped_pages(self) -> int:
        return len(self._map)

    def free_blocks(self, die: int) -> int:
        return len(self._free[die])

    def write_pointer_of(self, die: int, plane: int, block: int) -> int:
        """Programmed-page count of a physical block (0 if free/erased).

        Lets platform adapters mirror the FTL's instantaneous state onto
        timed NAND models after an untimed preconditioning phase.
        """
        info = self._blocks.get((die, plane, block))
        return info.write_pointer if info is not None else 0

    def wear_spread(self) -> Tuple[int, int]:
        """(min, max) P/E cycles across all blocks (wear-leveling health)."""
        counts = [self.backend.pe_of(die, plane, block)
                  for die in range(self.backend.n_dies)
                  for plane in range(self.backend.planes)
                  for block in range(self.backend.blocks)]
        return min(counts), max(counts)

    def counters(self) -> Dict[str, object]:
        """Flat accounting snapshot (feeds device/sweep FTL metrics)."""
        return {
            "host_writes": self.host_writes,
            "gc_relocations": self.gc_relocations,
            "static_wl_relocations": self.static_wl_relocations,
            "static_wl_migrations": self.static_wl_migrations,
            "rmw_relocations": self.rmw_relocations,
            "translation_writes": self.translation_writes,
            "gc_deferrals": self.gc_deferrals,
            "gc_stalls": self.gc_stalls,
            "gc_spills": self.gc_spills,
            "write_redirects": self.write_redirects,
            "trims": self.trims,
            "mapped_pages": self.mapped_pages(),
            "waf": self.waf,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_lpn(self, logical_page: int) -> None:
        if not 0 <= logical_page < self.logical_pages:
            raise FtlError(f"logical page {logical_page} out of range "
                           f"[0, {self.logical_pages})")

    def _pick_die(self) -> int:
        die = self._next_die
        self._next_die = (self._next_die + 1) % self.backend.n_dies
        return die

    def _room_of(self, die: int) -> int:
        """Pages this die can still absorb without a GC pass: space left
        in the active block plus every block on the free list."""
        active = self._active[die]
        room = 0 if active is None \
            else max(0, self.backend.pages - active.write_pointer)
        return room + len(self._free[die]) * self.backend.pages

    def _allocate_block(self, die: int) -> BlockInfo:
        if not self._free[die]:
            raise FtlError(f"die {die} has no free blocks (GC starvation)")
        # Dynamic wear leveling: coldest free block first.
        coldest_index = min(
            range(len(self._free[die])),
            key=lambda i: self.backend.pe_of(*self._free[die][i]))
        key = self._free[die].pop(coldest_index)
        self._alloc_counter += 1
        info = BlockInfo(*key, alloc_seq=self._alloc_counter)
        self._blocks[key] = info
        return info

    def _program_page(self, logical_page: int,
                      die: Optional[int] = None) -> PhysicalPage:
        target_die = die if die is not None else self._pick_die()
        active = self._active[target_die]
        if die is None and not self._free[target_die] \
                and (active is None
                     or active.write_pointer >= self.backend.pages):
            # The round-robin pick cannot absorb this page (no active
            # room, no free block — its GC is deferring).  Unpinned
            # writes are die-agnostic, so redirect to the roomiest die
            # instead of crashing in _allocate_block; a pinned die
            # (GC/WL relocation) is never redirected — the collector
            # pre-checks capacity before committing to a victim.
            target_die = max(range(self.backend.n_dies),
                             key=lambda d: (self._room_of(d), -d))
            active = self._active[target_die]
            self.write_redirects += 1
        if active is None or active.write_pointer >= self.backend.pages:
            if active is not None:
                # The outgoing (full) block becomes a GC candidate now.
                self._push_victim(active)
            active = self._allocate_block(target_die)
            self._active[target_die] = active
        page_index = active.write_pointer
        active.write_pointer += 1
        location = (active.die, active.plane, active.block, page_index)

        previous = self._map.get(logical_page)
        if previous is not None:
            self._invalidate(previous)
        self._map[logical_page] = location
        active.valid_pages.add(page_index)
        self._lpn_of.setdefault(active.key, {})[page_index] = logical_page
        self.backend.program(location)
        return location

    def _invalidate(self, location: PhysicalPage) -> None:
        die, plane, block, page = location
        key = (die, plane, block)
        info = self._blocks.get(key)
        if info is None:
            raise FtlError(f"invalidating page in unknown block {key}")
        info.valid_pages.discard(page)
        lpn_map = self._lpn_of.get(key)
        if lpn_map is not None:
            lpn_map.pop(page, None)
        if info is not self._active[die] \
                and info.write_pointer >= self.backend.pages:
            self._push_victim(info)
        # An invalidation can turn a previously uncollectable die (victim
        # too full to relocate) into a collectable one; queue it for the
        # next collection pass, exactly when the all-die rescan would
        # have picked it up.
        self._gc_pending.add(die)

    def _push_victim(self, info: BlockInfo) -> None:
        heapq.heappush(self._victims[info.die],
                       (len(info.valid_pages), info.alloc_seq, info.key))

    def _collect_if_needed(self, die_hint: int) -> None:
        # The hinted die plus any die whose state changed since the last
        # pass (queued by _invalidate / _static_wear_level).  Processing
        # the pending set in die order reproduces the retired all-die
        # rescan byte for byte: a die that is neither hinted nor pending
        # is either at its watermark or provably unchanged, so the scan
        # it no longer gets was a no-op.
        self._gc_pending.add(die_hint)
        pending, self._gc_pending = sorted(self._gc_pending), set()
        for die in pending:
            while len(self._free[die]) < self.gc_low_watermark:
                before = len(self._free[die])
                if not self._collect_one(die):
                    break
                if len(self._free[die]) <= before:
                    # The collection freed no net block (a fully-valid
                    # victim was moved, not reclaimed).  Nothing gets
                    # invalidated during pure relocation, so repeating
                    # can only churn forever — stop; the next host
                    # overwrite creates invalid pages and GC resumes.
                    self.gc_stalls += 1
                    break
        if self.static_wl_threshold:
            self._static_wear_level()

    def _static_wear_level(self) -> None:
        """Migrate cold data off the coldest block when the P/E spread
        grows past the threshold (classic static wear leveling)."""
        for die in range(self.backend.n_dies):
            hottest = max(
                (self.backend.pe_of(die, plane, block)
                 for plane in range(self.backend.planes)
                 for block in range(self.backend.blocks)), default=0)
            # Coldest *occupied* block with data that never moves.
            candidates = [
                info for info in self._blocks.values()
                if info.die == die and info is not self._active[die]
                and info.write_pointer >= self.backend.pages
                and info.valid_pages
            ]
            if not candidates:
                continue
            coldest = min(candidates,
                          key=lambda info: self.backend.pe_of(*info.key))
            spread = hottest - self.backend.pe_of(*coldest.key)
            if spread <= self.static_wl_threshold:
                continue
            # Relocate the cold block's valid pages and free it.
            key = coldest.key
            lpn_map = self._lpn_of.get(key, {})
            for page_index in sorted(coldest.valid_pages):
                logical_page = lpn_map.get(page_index)
                if logical_page is None:
                    raise FtlError(
                        f"cold page {page_index} in {key} has no lpn")
                self.backend.read((coldest.die, coldest.plane,
                                   coldest.block, page_index))
                self._program_page(logical_page, die=die)
                self.static_wl_relocations += 1
            coldest.valid_pages.clear()
            self._lpn_of.pop(key, None)
            self._blocks.pop(key, None)
            self.backend.erase(coldest.die, coldest.plane, coldest.block)
            self._free[die].append(key)
            self.static_wl_migrations += 1

    def _collect_one(self, die: int) -> bool:
        victim = self._pick_victim(die)
        if victim is None:
            return False
        # Starvation guard: relocating the victim's valid pages consumes
        # room in the active block and then fresh blocks off the free
        # list.  If the die cannot absorb them, collecting would crash
        # mid-relocation inside _allocate_block.  Spill the valid pages
        # to the roomiest other die when one can take them (otherwise a
        # die at zero free blocks with a full active block deadlocks:
        # its GC needs room that only its GC can create); defer only
        # when no die on the device has room.
        target = die
        if len(victim.valid_pages) > self._room_of(die):
            needed = len(victim.valid_pages)
            spill_dies = [d for d in range(self.backend.n_dies)
                          if d != die and self._room_of(d) >= needed]
            if not spill_dies:
                self.gc_deferrals += 1
                return False
            target = max(spill_dies,
                         key=lambda d: (self._room_of(d), -d))
            self.gc_spills += 1
        key = victim.key
        lpn_map = self._lpn_of.get(key, {})
        for page_index in sorted(victim.valid_pages):
            logical_page = lpn_map.get(page_index)
            if logical_page is None:
                raise FtlError(f"valid page {page_index} in {key} has no lpn")
            self.backend.read((victim.die, victim.plane, victim.block,
                               page_index))
            self._program_page(logical_page, die=target)
            self.gc_relocations += 1
        victim.valid_pages.clear()
        self._lpn_of.pop(key, None)
        self._blocks.pop(key, None)
        self.backend.erase(victim.die, victim.plane, victim.block)
        self._free[die].append(key)
        return True

    def _pick_victim(self, die: int) -> Optional[BlockInfo]:
        """Greedy: fully-written block on this die with fewest valid pages.

        Lazy-heap lookup: pop entries whose (count, seq) no longer match
        a live, full, non-active block; the first live entry is the
        victim.  It is *peeked*, not consumed — erasing the block makes
        the entry stale, and a deferred collection leaves it in place.
        """
        heap = self._victims[die]
        while heap:
            count, seq, key = heap[0]
            info = self._blocks.get(key)
            if (info is None or info.alloc_seq != seq
                    or info is self._active[die]
                    or info.write_pointer < self.backend.pages
                    or len(info.valid_pages) != count):
                heapq.heappop(heap)
                continue
            return info
        return None
