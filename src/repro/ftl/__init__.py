"""Flash translation layer: WAF abstraction and real mapping schemes."""

from .pagemap import (BlockInfo, FlashBackend, FtlError, JournalingBackend,
                      PageMapFtl, PhysicalPage)
from .schemes import (DEFAULT_GROUP_PAGES, ENTRY_BYTES, FTL_SCHEMES,
                      DftlFtl, FtlScheme, GroupMapFtl, MappingFootprint,
                      get_scheme, make_ftl, register_scheme,
                      scheme_footprint, scheme_names)
from .waf import (GreedyWafSimulator, WafModel, build_default_waf_model,
                  spare_factor, waf_lru_analytic)

__all__ = [
    "BlockInfo", "DEFAULT_GROUP_PAGES", "DftlFtl", "ENTRY_BYTES",
    "FTL_SCHEMES", "FlashBackend", "FtlError", "FtlScheme",
    "GreedyWafSimulator", "GroupMapFtl", "JournalingBackend",
    "MappingFootprint", "PageMapFtl", "PhysicalPage", "WafModel",
    "build_default_waf_model", "get_scheme", "make_ftl", "register_scheme",
    "scheme_footprint", "scheme_names", "spare_factor", "waf_lru_analytic",
]
