"""Flash translation layer: WAF abstraction and a real page-mapping FTL."""

from .pagemap import (BlockInfo, FlashBackend, FtlError, PageMapFtl,
                      PhysicalPage)
from .waf import (GreedyWafSimulator, WafModel, build_default_waf_model,
                  spare_factor, waf_lru_analytic)

__all__ = [
    "BlockInfo", "FlashBackend", "FtlError", "GreedyWafSimulator",
    "PageMapFtl", "PhysicalPage", "WafModel", "build_default_waf_model",
    "spare_factor", "waf_lru_analytic",
]
