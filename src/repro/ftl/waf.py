"""Write Amplification Factor (WAF) models.

The validated SSDExplorer instance abstracts the FTL through "a
reconfigurable WAF algorithm based on greedy policy" following Hu et al.,
"Write amplification analysis in flash-based solid state drives"
(SYSTOR 2009) — reference [5] of the paper.  The idea: instead of running
garbage collection, charge every host write its steady-state share of GC
traffic, ``WAF - 1`` extra page relocations (a read + a program) per user
page, plus the amortized erase.

Two models are provided:

* :func:`waf_lru_analytic` — the classical closed-form first-order
  approximation for LRU/FIFO-style cleaning under uniform random writes,
  ``WAF = (1 + s) / (2 s)`` with spare factor ``s`` (Hu et al., Section 3).
* :class:`GreedyWafSimulator` — a lightweight windowed **greedy** cleaning
  simulation over block-occupancy counters only (no data, no timing), the
  same "lightweight algorithm" the paper embeds.  Greedy picks the victim
  with the fewest valid pages, which beats the LRU bound.

:class:`WafModel` is the runtime object the SSD consumes: it yields a WAF
per workload pattern (sequential ~1.0; random from the greedy simulation)
and converts it into extra page traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


def spare_factor(physical_pages: int, logical_pages: int) -> float:
    """Over-provisioning ``s = (physical - logical) / logical``."""
    if logical_pages < 1 or physical_pages <= logical_pages:
        raise ValueError(
            f"need physical ({physical_pages}) > logical ({logical_pages}) > 0")
    return (physical_pages - logical_pages) / logical_pages


def waf_lru_analytic(spare: float) -> float:
    """First-order LRU-cleaning WAF under uniform random writes.

    ``WAF = (1 + s) / (2 s)`` — Hu et al.'s baseline approximation; an
    upper envelope for greedy cleaning.
    """
    if spare <= 0:
        raise ValueError(f"spare factor must be positive, got {spare}")
    return (1.0 + spare) / (2.0 * spare)


class GreedyWafSimulator:
    """Block-occupancy simulation of greedy garbage collection.

    State per block is just its valid-page count; a logical-to-physical
    page map tracks which block each logical page lives in.  This is
    orders of magnitude cheaper than a real FTL yet produces the correct
    steady-state WAF, which is all the performance model needs.
    """

    def __init__(self, n_blocks: int, pages_per_block: int,
                 logical_pages: int, gc_threshold_blocks: int = 2,
                 seed: int = 12345):
        physical_pages = n_blocks * pages_per_block
        if logical_pages >= physical_pages:
            raise ValueError("logical capacity must leave spare blocks")
        if gc_threshold_blocks < 1 or gc_threshold_blocks >= n_blocks:
            raise ValueError("gc_threshold_blocks out of range")
        self.n_blocks = n_blocks
        self.pages_per_block = pages_per_block
        self.logical_pages = logical_pages
        self.gc_threshold_blocks = gc_threshold_blocks
        self._seed = seed

        self.valid_count = [0] * n_blocks
        self.block_of_page: List[int] = [-1] * logical_pages
        # Reverse map kept in sync with block_of_page so GC can enumerate a
        # victim's valid pages in O(valid) instead of O(logical_pages).
        self.pages_in_block: List[set] = [set() for __ in range(n_blocks)]
        self.free_blocks = list(range(n_blocks - 1, 0, -1))
        self.active_block = 0
        self.active_fill = 0
        # A block being filled also holds stale slots from relocations.
        self.slots_used = [0] * n_blocks

        self.host_writes = 0
        self.total_programs = 0
        self.gc_relocations = 0
        self.erases = 0

    # ------------------------------------------------------------------
    def _next_random(self) -> int:
        # xorshift32: deterministic, dependency-free uniform stream.
        x = self._seed
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._seed = x
        return x

    def _allocate_slot(self) -> int:
        """Return the block receiving the next programmed page."""
        if self.active_fill == self.pages_per_block:
            if not self.free_blocks:
                raise RuntimeError("greedy WAF simulator ran out of blocks; "
                                   "GC threshold too low")
            self.active_block = self.free_blocks.pop()
            self.active_fill = 0
        block = self.active_block
        self.active_fill += 1
        self.slots_used[block] += 1
        return block

    def _program(self, logical_page: int) -> None:
        previous = self.block_of_page[logical_page]
        if previous >= 0:
            self.valid_count[previous] -= 1
            self.pages_in_block[previous].discard(logical_page)
        block = self._allocate_slot()
        self.block_of_page[logical_page] = block
        self.valid_count[block] += 1
        self.pages_in_block[block].add(logical_page)
        self.total_programs += 1

    def _maybe_collect(self) -> None:
        while len(self.free_blocks) < self.gc_threshold_blocks:
            victim = self._pick_victim()
            if victim is None:
                return
            # Relocate valid pages of the victim.
            for page in list(self.pages_in_block[victim]):
                self._program(page)
                self.gc_relocations += 1
            self.valid_count[victim] = 0
            self.slots_used[victim] = 0
            self.pages_in_block[victim].clear()
            self.erases += 1
            self.free_blocks.insert(0, victim)

    def _pick_victim(self) -> Optional[int]:
        best = None
        best_valid = self.pages_per_block + 1
        for block in range(self.n_blocks):
            if block == self.active_block:
                continue
            if self.slots_used[block] < self.pages_per_block:
                continue  # not fully written yet (or already free)
            if block in self.free_blocks:
                continue
            if self.valid_count[block] < best_valid:
                best = block
                best_valid = self.valid_count[block]
        return best

    # ------------------------------------------------------------------
    def write(self, logical_page: int) -> None:
        """One host page write."""
        if not 0 <= logical_page < self.logical_pages:
            raise ValueError(f"logical page {logical_page} out of range")
        self._program(logical_page)
        self.host_writes += 1
        self._maybe_collect()

    def write_random(self, count: int) -> None:
        """Uniform random host writes (the Hu et al. workload)."""
        for __ in range(count):
            self.write(self._next_random() % self.logical_pages)

    def write_sequential(self, count: int, start: int = 0) -> None:
        """Wrap-around sequential host writes."""
        for index in range(count):
            self.write((start + index) % self.logical_pages)

    @property
    def waf(self) -> float:
        """Measured write amplification so far."""
        if self.host_writes == 0:
            return 1.0
        return self.total_programs / self.host_writes

    def measure_steady_state(self, pattern: str = "random",
                             warmup_multiplier: float = 3.0,
                             measure_multiplier: float = 2.0) -> float:
        """Fill the device, reach steady state, then measure WAF."""
        warmup = int(self.logical_pages * warmup_multiplier)
        measure = int(self.logical_pages * measure_multiplier)
        writer = (self.write_random if pattern == "random"
                  else self.write_sequential)
        writer(warmup)
        base_programs = self.total_programs
        base_writes = self.host_writes
        writer(measure)
        return ((self.total_programs - base_programs)
                / (self.host_writes - base_writes))


@dataclass(frozen=True)
class WafModel:
    """Runtime WAF abstraction the SSD data path consults.

    ``sequential_waf`` defaults to 1.0 (greedy cleaning of a purely
    sequential stream relocates nothing); ``random_waf`` should come from
    :class:`GreedyWafSimulator` or :func:`waf_lru_analytic` for the
    device's over-provisioning.
    """

    sequential_waf: float = 1.0
    random_waf: float = 2.3
    #: Erases per (amplified) page program: 1 / pages_per_block.
    erase_share: float = 1.0 / 128

    def __post_init__(self) -> None:
        if self.sequential_waf < 1.0 or self.random_waf < 1.0:
            raise ValueError("WAF values must be >= 1.0")
        if not 0.0 <= self.erase_share <= 1.0:
            raise ValueError("erase_share must be in [0, 1]")

    def waf_for(self, pattern: str) -> float:
        """WAF for a workload pattern ('sequential' or 'random')."""
        if pattern == "sequential":
            return self.sequential_waf
        if pattern == "random":
            return self.random_waf
        raise ValueError(f"unknown pattern {pattern!r}")

    def extra_page_operations(self, pattern: str, pages_written: int,
                              carry: float = 0.0) -> Dict[str, float]:
        """GC traffic charged to ``pages_written`` host pages.

        Returns a dict with fractional ``relocations`` (each one page read
        + one page program) and ``erases``; callers accumulate the
        fractional remainder via ``carry``.
        """
        if pages_written < 0:
            raise ValueError("pages_written must be >= 0")
        waf = self.waf_for(pattern)
        relocations = (waf - 1.0) * pages_written + carry
        erases = waf * pages_written * self.erase_share
        return {"relocations": relocations, "erases": erases}


def build_default_waf_model(spare: float = 0.094,
                            pages_per_block: int = 128) -> WafModel:
    """WAF model for a typical consumer SSD (~9% over-provisioning, the
    1 GiB-per-die / 1000^3-advertised ratio plus reserve).

    The random WAF uses the greedy block-level simulation at matched
    over-provisioning (cheaper settings: 256 blocks window).
    """
    n_blocks = 256
    logical_pages = int(n_blocks * pages_per_block / (1.0 + spare))
    simulator = GreedyWafSimulator(n_blocks, pages_per_block, logical_pages,
                                   gc_threshold_blocks=2)
    random_waf = simulator.measure_steady_state("random",
                                                warmup_multiplier=2.0,
                                                measure_multiplier=1.0)
    return WafModel(sequential_waf=1.0, random_waf=random_waf,
                    erase_share=1.0 / pages_per_block)
